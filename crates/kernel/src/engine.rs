//! The shared engine and its per-connection sessions.
//!
//! The paper's argument is that multilingual operators belong *inside* the
//! engine so they run at relational speeds; an engine that serves one
//! client at a time undercuts that claim.  This module splits the old
//! `Database` monolith in two:
//!
//! * [`Engine`] — everything shared between connections: the catalog
//!   (behind an `RwLock` so DDL excludes readers but readers run in
//!   parallel), the buffer pool, the WAL, the plan cache, and the schema
//!   epoch.  `Engine` is `Send + Sync` and lives behind an `Arc`.
//! * [`Session`] — one connection's state: its [`SessionVars`], statement
//!   execution, and trace spans.  Sessions are cheap (`Engine::connect`)
//!   and `Send`, so `N` threads each own one and query concurrently.
//!
//! ## Lock hierarchy
//!
//! Locks are always taken in this order (any prefix may be skipped, never
//! reordered), which makes deadlock impossible by construction:
//!
//! 1. `Engine::catalog` (`RwLock`) — DDL/ANALYZE vs. everything else.
//! 2. `Engine::dml_lock` (`Mutex`) — serializes writers (single-writer,
//!    many-reader model; readers never touch it).
//! 3. Buffer-pool mutex (inside [`BufferPool`]).
//! 4. Per-index instance `RwLock` (inside `IndexMeta`) — searches share
//!    the read guard, DML maintenance takes the write guard.
//! 5. WAL append mutex (inside [`SharedWal`]) — appends only; the group-
//!    commit fsync happens *after* a statement has released every lock
//!    above, on a rendezvous that is outside this hierarchy (see
//!    `SharedWal::commit`).
//!
//! The catalog read guard is passed *down* into helpers (`&Catalog`), never
//! re-acquired — parking_lot read locks are not reentrant once a writer is
//! queued.
//!
//! ## Plan cache
//!
//! Hot multilingual lookups are short point queries (ψ/Ω probes against a
//! names table), so parse/bind/plan overhead is a real fraction of their
//! latency.  The engine keeps a bounded map from *(normalized SQL, session
//! fingerprint)* to `Arc<PhysNode>`.  Normalization lowercases and
//! collapses whitespace outside string literals; the fingerprint hashes all
//! session variables because they steer planning (`enable_*`,
//! `lexequal.threshold`, ...).  Every entry records the schema epoch it was
//! planned under; DDL and ANALYZE bump the epoch and flush the cache, so a
//! stale plan can never be served (entries inserted by an in-flight query
//! that raced a DDL carry the old epoch and are rejected on lookup).

use crate::catalog::{Catalog, ColumnStats, SessionVars, TableStats};
use crate::error::{Error, Result};
use crate::exec::{build_instrumented, run_to_vec, ExecCtx, ExecPool, ExecStats, MAX_ROWS_VAR};
use crate::expr::EvalCtx;
use crate::obs::{self, QueryTrace, Stage, WaitClass, WaitProfile};
use crate::opt;
use crate::plan::{NodeActuals, PhysNode};
use crate::schema::{Column, Row, Schema};
use crate::snapshot::{self, Snapshot};
use crate::sql::{self, Statement};
use crate::storage::{
    decode_row, encode_row, encode_version, split_version, BufferPool, HeapFile, IoStats,
    MemBackend, SharedWal, StorageBackend, SyncMode, WalRecord, FROZEN_TXN_ID, VERSION_HEADER_LEN,
};
use crate::txn::{TransactionManager, TxnSnapshot, TxnVisibility, INVALID_TXN_ID};
use crate::value::{DataType, Datum};
use parking_lot::{Mutex, RwLock, RwLockReadGuard, RwLockWriteGuard};
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

/// Per-statement runtime statistics.
#[derive(Debug, Clone, Default)]
pub struct RunStats {
    /// Buffer-pool traffic during the statement.
    pub io: IoStats,
    /// Index nodes visited.
    pub index_node_visits: u64,
    /// Extension-operator (ψ/Ω) evaluations during the statement.
    pub ext_op_calls: u64,
    /// Batches emitted by the plan root (0 when the statement ran
    /// row-at-a-time, e.g. DML or `SET enable_batch = 0`).
    pub batches: u64,
    /// Wall-clock execution time (excludes parse/plan).
    pub exec_time: Duration,
    /// Optimizer-predicted total cost of the executed plan (queries only).
    pub est_cost: Option<f64>,
    /// Optimizer-predicted output rows.
    pub est_rows: Option<f64>,
    /// Stage span tree (parse/bind/plan/execute) for queries.
    pub trace: Option<QueryTrace>,
    /// Engine-wide statement id (0 for statements run outside
    /// `Session::execute`, e.g. `query_ref`).
    pub query_id: u64,
    /// FNV-1a digest of the executed physical plan (queries only, and
    /// only while observability is enabled).
    pub plan_digest: Option<u64>,
    /// Waits suffered by the statement across every thread that worked
    /// on it (session thread, scan workers, WAL rendezvous).
    pub waits: Option<Arc<WaitProfile>>,
}

/// Result of executing one statement.
#[derive(Debug, Clone, Default)]
pub struct QueryResult {
    /// Output schema (empty for DDL/DML).
    pub schema: Schema,
    /// Result rows (empty for DDL/DML).
    pub rows: Vec<Row>,
    /// `EXPLAIN` text, when requested.
    pub explain: Option<String>,
    /// Rows affected by DML.
    pub affected: u64,
    /// Runtime statistics.
    pub stats: RunStats,
}

/// Session variable gating the flight recorder (`SET slow_query_ms`):
/// `0` records every statement, `n > 0` only statements ≥ `n` ms,
/// negative disables recording.
pub const SLOW_QUERY_MS_VAR: &str = "slow_query_ms";

/// Session variable (`SET qerror_warn`) bounding the tolerated q-error
/// of row estimates: EXPLAIN ANALYZE marks nodes above it with
/// `[MISESTIMATE]`, and scans of a table exceeding it over
/// [`obs::planstore::ADVISOR_WINDOW`] consecutive executions raise a
/// stale-statistics advisory (`SHOW ADVISORIES`).
pub const QERROR_WARN_VAR: &str = "qerror_warn";

/// Default `qerror_warn`: two orders of magnitude off before the engine
/// complains (q-error is ≥ 1 by construction; ordinary estimates land
/// well under 10).
pub const QERROR_WARN_DEFAULT: i64 = 100;

/// How `run_select` should report.
enum ExplainMode {
    Off,
    PlanOnly,
    Analyze,
}

// ------------------------------------------------------------- plan cache

/// Normalize SQL text for plan-cache keying: lowercase and collapse runs
/// of whitespace outside single-quoted literals.
pub fn normalize_sql(sql_text: &str) -> String {
    let mut out = String::with_capacity(sql_text.len());
    let mut in_str = false;
    let mut pending_space = false;
    for ch in sql_text.chars() {
        if in_str {
            out.push(ch);
            if ch == '\'' {
                in_str = false;
            }
            continue;
        }
        if ch.is_whitespace() {
            pending_space = true;
            continue;
        }
        if pending_space {
            if !out.is_empty() {
                out.push(' ');
            }
            pending_space = false;
        }
        if ch == '\'' {
            in_str = true;
            out.push(ch);
        } else {
            out.extend(ch.to_lowercase());
        }
    }
    out
}

/// One cached physical plan.
struct CachedPlan {
    plan: Arc<PhysNode>,
    /// Schema epoch the plan was produced under.
    epoch: u64,
}

/// Bounded map from (normalized SQL, session fingerprint) to physical
/// plans.  Epoch-checked on lookup; flushed wholesale on invalidation.
struct PlanCache {
    entries: Mutex<HashMap<(String, u64), CachedPlan>>,
    capacity: usize,
}

impl PlanCache {
    fn new(capacity: usize) -> Self {
        PlanCache {
            entries: Mutex::new(HashMap::new()),
            capacity,
        }
    }

    /// A cached plan for `key`, if one exists and matches `epoch`.
    fn lookup(&self, key: &(String, u64), epoch: u64) -> Option<Arc<PhysNode>> {
        let mut map = self.entries.lock();
        match map.get(key) {
            Some(e) if e.epoch == epoch => Some(Arc::clone(&e.plan)),
            Some(_) => {
                // Planned under an older schema: drop it.
                map.remove(key);
                None
            }
            None => None,
        }
    }

    fn insert(&self, key: (String, u64), plan: Arc<PhysNode>, epoch: u64) {
        let mut map = self.entries.lock();
        // Evict one arbitrary entry at capacity: random-ish eviction keeps
        // most of the hot working set resident (a wholesale flush would
        // thrash under >capacity distinct keys) without the overhead of an
        // LRU chain.
        if map.len() >= self.capacity && !map.contains_key(&key) {
            if let Some(victim) = map.keys().next().cloned() {
                map.remove(&victim);
            }
        }
        map.insert(key, CachedPlan { plan, epoch });
    }

    fn clear(&self) {
        self.entries.lock().clear();
    }

    fn len(&self) -> usize {
        self.entries.lock().len()
    }
}

// ------------------------------------------------------------------ engine

/// Shared, thread-safe core of a database instance: catalog, buffer pool,
/// WAL, plan cache.  Connections are opened with [`Engine::connect`].
pub struct Engine {
    catalog: RwLock<Catalog>,
    pool: BufferPool,
    durability: OnceLock<Durability>,
    /// Serializes DML statements (single-writer / many-reader model).
    dml_lock: Mutex<()>,
    /// Bumped by DDL and ANALYZE; plan-cache entries from older epochs
    /// are never served.
    schema_epoch: AtomicU64,
    plan_cache: PlanCache,
    /// Shared worker pool for morsel-driven parallel scans (threads are
    /// spawned lazily on the first parallel plan).
    exec_pool: ExecPool,
    /// `SET wal_sync_mode` issued before durability is attached (e.g.
    /// during extension install or WAL replay, when the engine is still
    /// WAL-less); applied by [`Engine::attach_durability`] so the setting
    /// is not silently lost.
    pending_wal_mode: Mutex<Option<SyncMode>>,
    /// Process-unique id: activity rows and flight records are tagged
    /// with it so the process-wide views can be filtered per engine
    /// (the test suite runs many engines in one process).
    engine_id: u64,
    /// Allocator for per-engine session ids.
    next_session_id: AtomicU64,
    /// MVCC transaction bookkeeping: monotonic ids, the active set, and
    /// aborted ids awaiting checkpoint vacuum.
    txns: TransactionManager,
}

/// `Engine` must stay shareable across session threads.
const _: fn() = || {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Engine>();
    assert_send_sync::<QueryResult>();
};

impl Engine {
    /// A fresh in-memory engine (no durability).
    pub fn in_memory() -> Arc<Engine> {
        Engine::with_backend(Box::new(MemBackend::new()))
    }

    /// An engine over an arbitrary storage backend, WAL-less until
    /// [`Engine::attach_durability`].
    pub fn with_backend(backend: Box<dyn StorageBackend>) -> Arc<Engine> {
        static NEXT_ENGINE_ID: AtomicU64 = AtomicU64::new(1);
        Arc::new(Engine {
            catalog: RwLock::new(Catalog::new()),
            pool: BufferPool::new(backend, 1024),
            durability: OnceLock::new(),
            dml_lock: Mutex::new(()),
            schema_epoch: AtomicU64::new(0),
            plan_cache: PlanCache::new(256),
            exec_pool: ExecPool::new(),
            pending_wal_mode: Mutex::new(None),
            engine_id: NEXT_ENGINE_ID.fetch_add(1, Ordering::Relaxed),
            next_session_id: AtomicU64::new(1),
            txns: TransactionManager::new(),
        })
    }

    /// Process-unique engine id (tags activity rows and flight records).
    pub fn engine_id(&self) -> u64 {
        self.engine_id
    }

    /// The engine's transaction manager (MVCC snapshots and txn ids).
    pub fn txns(&self) -> &TransactionManager {
        &self.txns
    }

    /// Visibility for a reader outside any transaction: a fresh snapshot
    /// and no transaction id of its own.  Every autocommit read uses one;
    /// helpers that walk heaps directly (benches, extension k-NN) should
    /// too, so they never surface uncommitted or deleted versions.
    pub fn fresh_visibility(&self) -> TxnVisibility {
        TxnVisibility {
            txn: INVALID_TXN_ID,
            snap: self.txns.snapshot(),
        }
    }

    /// Open a new session against this engine.  `vars` seeds the session's
    /// variables (extensions may have installed defaults on a template
    /// session).
    pub fn connect_with_vars(self: &Arc<Self>, vars: SessionVars) -> Session {
        obs::metrics().sessions_opened_total.inc();
        let session_id = self.next_session_id.fetch_add(1, Ordering::Relaxed);
        let slot = Arc::new(obs::ActivitySlot::new(self.engine_id, session_id));
        obs::activity::register(&slot);
        Session {
            engine: Arc::clone(self),
            vars,
            session_id,
            slot,
            txn: None,
        }
    }

    /// Open a new session with empty session variables.
    pub fn connect(self: &Arc<Self>) -> Session {
        self.connect_with_vars(SessionVars::new())
    }

    /// Shared catalog access.  Uncontended reads take the try-lock fast
    /// path; contended ones are timed as [`WaitClass::Catalog`] waits and
    /// charged to the query installed on this thread.
    pub fn catalog(&self) -> RwLockReadGuard<'_, Catalog> {
        if let Some(guard) = self.catalog.try_read() {
            return guard;
        }
        obs::waits::time_wait(WaitClass::Catalog, || self.catalog.read())
    }

    /// Exclusive catalog access (extension registration, DDL).  Any write
    /// access may change planning inputs, so the schema epoch is bumped —
    /// cached plans from before the call are discarded.  Contended
    /// acquisitions are timed as [`WaitClass::Catalog`] waits.
    pub fn catalog_mut(&self) -> RwLockWriteGuard<'_, Catalog> {
        let guard = match self.catalog.try_write() {
            Some(guard) => guard,
            None => obs::waits::time_wait(WaitClass::Catalog, || self.catalog.write()),
        };
        self.bump_schema_epoch();
        guard
    }

    /// The buffer pool (benches read I/O statistics from here).
    pub fn pool(&self) -> &BufferPool {
        &self.pool
    }

    /// The shared executor worker pool (parallel scans dispatch here).
    pub fn exec_pool(&self) -> &ExecPool {
        &self.exec_pool
    }

    /// Current schema epoch (bumped by DDL/ANALYZE).
    pub fn schema_epoch(&self) -> u64 {
        self.schema_epoch.load(Ordering::Acquire)
    }

    /// Invalidate all cached plans and advance the schema epoch.
    pub fn bump_schema_epoch(&self) {
        self.schema_epoch.fetch_add(1, Ordering::AcqRel);
        self.plan_cache.clear();
        obs::metrics().plan_cache_invalidations_total.inc();
    }

    /// Number of currently cached plans (for tests/diagnostics).
    pub fn cached_plan_count(&self) -> usize {
        self.plan_cache.len()
    }

    /// Drop every cached plan without bumping the schema epoch (benches
    /// use this to measure cold-plan throughput).
    pub fn flush_plan_cache(&self) {
        self.plan_cache.clear();
    }

    /// Attach durability; subsequent DDL/DML is logged through `wal`.
    /// Recovery opens the engine without durability, replays, then
    /// attaches — so replayed statements are not re-logged.  `root` is the
    /// database directory (checkpoints write their snapshots there; `None`
    /// for WAL-only setups such as unit tests).
    pub fn attach_durability(&self, wal: Arc<SharedWal>, root: Option<PathBuf>) {
        // A `SET wal_sync_mode` that ran while the engine was still
        // WAL-less (extension install scripts, statements replayed before
        // attach) wins over the opener's default mode.
        if let Some(mode) = self.pending_wal_mode.lock().take() {
            wal.set_mode(mode);
        }
        if self.durability.set(Durability { wal, root }).is_err() {
            panic!("durability already attached to this engine");
        }
    }

    /// The attached WAL, if any (benches and tests inspect sync state).
    pub fn wal(&self) -> Option<&Arc<SharedWal>> {
        self.durability.get().map(|d| &d.wal)
    }

    /// Current WAL durability mode (`None` for in-memory engines).
    pub fn wal_sync_mode(&self) -> Option<SyncMode> {
        self.durability.get().map(|d| d.wal.mode())
    }

    /// Change the WAL durability mode (the `SET wal_sync_mode` knob).
    /// Engine-wide: the WAL is one shared stream, so the knob cannot be
    /// per-session.  Before durability is attached the mode is parked and
    /// applied by [`Engine::attach_durability`] — a `SET` issued during
    /// bootstrap must not be silently dropped (engines that stay
    /// in-memory simply never consume it).
    pub fn set_wal_sync_mode(&self, mode: SyncMode) {
        match self.durability.get() {
            Some(d) => d.wal.set_mode(mode),
            None => *self.pending_wal_mode.lock() = Some(mode),
        }
    }

    fn log(&self, rec: WalRecord) -> Result<()> {
        if let Some(d) = self.durability.get() {
            d.wal.append(&rec)?;
        }
        Ok(())
    }

    /// Group-commit rendezvous: make everything logged so far durable.
    /// Called *after* a statement has released its catalog/DML locks, so
    /// concurrent sessions' appends batch behind one fsync.
    pub(crate) fn wal_commit(&self) -> Result<()> {
        if let Some(d) = self.durability.get() {
            d.wal.commit()?;
        }
        Ok(())
    }

    /// Checkpoint: vacuum-freeze the heaps, flush dirty pages, persist a
    /// catalog snapshot plus copies of the heap files under the database
    /// root, then truncate the WAL.  Recovery restores from the snapshot
    /// and replays only the WAL tail, so reopen cost is bounded by
    /// post-checkpoint activity.
    ///
    /// The vacuum physically deletes versions dead to a fresh snapshot
    /// (aborted inserts, committed deletes) and freezes every survivor to
    /// `xmin = FROZEN_TXN_ID, xmax = 0` — the snapshot's heap copies must
    /// not reference transaction ids, because recovery starts a fresh
    /// [`TransactionManager`] whose id space restarts at 2.  That is only
    /// sound when no transaction is in flight, so a checkpoint with open
    /// transactions fails up front.
    ///
    /// In-memory engines (and WAL-only setups without a root) just flush.
    pub fn checkpoint(&self) -> Result<()> {
        let Some(d) = self.durability.get() else {
            self.pool.flush_all()?;
            return Ok(());
        };
        let Some(root) = &d.root else {
            self.pool.flush_all()?;
            return Ok(());
        };
        if self.txns.has_active() {
            return Err(Error::Execution(
                "checkpoint requires no open transactions (vacuum would remove \
                 versions their snapshots still see)"
                    .into(),
            ));
        }
        // Quiesce writers: DML lock first, then the catalog guard — the
        // same order every DML statement uses.  The *write* guard (unlike
        // the read guard the pre-MVCC checkpoint took) also drains running
        // readers, so the vacuum below cannot rewrite version headers
        // under a scan that has already captured its snapshot.  DDL
        // (which takes the catalog write lock without the DML lock)
        // blocks here too, so nothing can append to the WAL between the
        // `sync_now` that fixes the snapshot LSN and the truncation.
        let _writer = self.dml_lock.lock();
        let catalog = self.catalog.write();
        self.vacuum_in(&catalog)?;
        self.txns.clear_aborted();
        let flushed = self.pool.flush_all()?;
        let lsn = d.wal.sync_now()?;
        let snap = Snapshot::capture(&catalog, lsn)?;
        snapshot::write_checkpoint(root, &snap)?;
        // The pointer is durable: every record ≤ lsn is covered by the
        // snapshot and the log can be emptied.  (A crash right here leaves
        // the old log in place; recovery skips records ≤ the snapshot LSN.)
        d.wal.truncate()?;
        let m = obs::metrics();
        m.checkpoints_total.inc();
        m.checkpoint_pages_flushed_total.add(flushed);
        Ok(())
    }

    /// Checkpoint vacuum: physically delete heap versions invisible to a
    /// fresh snapshot and freeze the survivors.  Caller holds the DML
    /// lock and the catalog write guard, and has verified no transaction
    /// is in flight.  Index entries for deleted versions are left behind
    /// on purpose — heap slots are never reused, so a stale entry just
    /// resolves to a missing tuple and is skipped by the scan.
    fn vacuum_in(&self, catalog: &Catalog) -> Result<()> {
        let vis = self.fresh_visibility();
        let frozen_header = encode_version(FROZEN_TXN_ID, INVALID_TXN_ID, &[]);
        for meta in catalog.tables() {
            let mut dead = Vec::new();
            let mut freeze = Vec::new();
            let mut scan_err = None;
            meta.heap.scan(&self.pool, |tid, bytes| {
                match split_version(bytes) {
                    Ok((xmin, xmax, _)) => {
                        if vis.sees(xmin, xmax) {
                            if xmin != FROZEN_TXN_ID || xmax != INVALID_TXN_ID {
                                freeze.push(tid);
                            }
                        } else {
                            dead.push(tid);
                        }
                    }
                    Err(e) => {
                        scan_err = Some(e);
                        return false;
                    }
                }
                true
            })?;
            if let Some(e) = scan_err {
                return Err(e);
            }
            for tid in freeze {
                meta.heap.patch(&self.pool, tid, 0, &frozen_header)?;
            }
            for tid in dead {
                meta.heap.delete(&self.pool, tid)?;
            }
        }
        Ok(())
    }
}

/// Durability attachments of an engine (absent for in-memory engines).
struct Durability {
    wal: Arc<SharedWal>,
    /// Database root directory for checkpoints (`None` = WAL-only).
    root: Option<PathBuf>,
}

// ----------------------------------------------------------------- session

/// One connection to an [`Engine`]: owns the session variables and runs
/// statements.  `Send` (not `Sync`) — a session belongs to one thread at a
/// time; open more sessions for more threads.
pub struct Session {
    engine: Arc<Engine>,
    vars: SessionVars,
    /// Engine-assigned connection id (monotonic per engine).
    session_id: u64,
    /// This session's live-activity slot (registered process-wide).
    slot: Arc<obs::ActivitySlot>,
    /// The transaction this session is in, if any.  Explicit transactions
    /// (`BEGIN` … `COMMIT`/`ROLLBACK`) live across statements; autocommit
    /// writes install an ephemeral one for the duration of the statement.
    txn: Option<SessionTxn>,
}

/// A session's open transaction.
struct SessionTxn {
    /// The id handed out by the engine's [`TransactionManager`].
    id: u64,
    /// Snapshot captured when the transaction began — every statement in
    /// the transaction reads against it (snapshot isolation).
    snap: TxnSnapshot,
    /// Set when a statement inside the transaction failed; everything but
    /// `COMMIT` (which rolls back) and `ROLLBACK` is then rejected.
    failed: bool,
}

const _: fn() = || {
    fn assert_send<T: Send>() {}
    assert_send::<Session>();
};

impl Session {
    /// The engine this session is connected to.
    pub fn engine(&self) -> &Arc<Engine> {
        &self.engine
    }

    /// Session variables.
    pub fn vars(&self) -> &SessionVars {
        &self.vars
    }

    /// Mutable session variables.
    pub fn vars_mut(&mut self) -> &mut SessionVars {
        &mut self.vars
    }

    /// Engine-assigned id of this connection.
    pub fn session_id(&self) -> u64 {
        self.session_id
    }

    /// Advance this statement's activity stage — but only when a tracked
    /// statement is installed on this thread (`query_ref` runs without a
    /// slot because one session object may serve many threads at once).
    fn set_stage(&self, stage: Stage) {
        if let Some(ctx) = obs::current() {
            if let Some(slot) = &ctx.slot {
                slot.set_stage(stage);
            }
        }
    }

    /// Execute one SQL statement.
    ///
    /// Wraps [`Session::execute_tracked`] with the query lifecycle: a
    /// fresh query id, the activity-slot begin/finish, a [`QueryContext`]
    /// installed on this thread (and propagated into scan workers and
    /// the WAL rendezvous) so waits land on this statement, and — when
    /// the statement meets `SET slow_query_ms` — a flight-recorder entry.
    ///
    /// [`QueryContext`]: obs::QueryContext
    pub fn execute(&mut self, sql_text: &str) -> Result<QueryResult> {
        let query_id = obs::next_query_id();
        let tracking = obs::enabled();
        if tracking {
            self.slot.begin(query_id, sql_text);
            // `begin` resets the txn column; republish for statements
            // running inside an explicit transaction.
            self.slot
                .set_txn(self.txn.as_ref().map_or(INVALID_TXN_ID, |t| t.id));
        }
        let qctx = Arc::new(obs::QueryContext::new(
            query_id,
            tracking.then(|| Arc::clone(&self.slot)),
        ));
        let _guard = obs::enter_query(Arc::clone(&qctx));
        let io_before = self.engine.pool.stats();
        let start = Instant::now();
        let result = self.execute_tracked(sql_text);
        if tracking {
            self.slot.finish();
        }
        let mut result = result?;
        result.stats.query_id = query_id;
        result.stats.waits = Some(Arc::clone(&qctx.waits));
        if let Some(t) = result.stats.trace.as_mut() {
            t.set_query_id(query_id);
        }
        if tracking {
            self.record_flight(
                query_id,
                sql_text,
                &result,
                start.elapsed(),
                &qctx,
                &io_before,
            );
        }
        Ok(result)
    }

    /// Deposit a flight-recorder entry if the statement meets the
    /// session's `slow_query_ms` threshold (0 = everything, <0 = never).
    fn record_flight(
        &self,
        query_id: u64,
        sql_text: &str,
        result: &QueryResult,
        elapsed: Duration,
        qctx: &Arc<obs::QueryContext>,
        io_before: &IoStats,
    ) {
        let threshold = self.vars.get_int(SLOW_QUERY_MS_VAR, 0);
        if threshold < 0 || (threshold > 0 && (elapsed.as_millis() as i64) < threshold) {
            return;
        }
        let io = self.engine.pool.stats().since(io_before);
        let rows = result.rows.len() as u64 + result.affected;
        obs::flight::record(obs::FlightRecord {
            engine_id: self.engine.engine_id,
            session_id: self.session_id,
            query_id,
            txn_id: self.txn.as_ref().map_or(INVALID_TXN_ID, |t| t.id),
            sql: obs::activity::snippet(sql_text).to_string(),
            plan_digest: result.stats.plan_digest.unwrap_or(0),
            elapsed,
            rows,
            batches: result.stats.batches,
            trace: result.stats.trace.clone().unwrap_or_default(),
            waits: Arc::clone(&qctx.waits),
            io_reads: (io.logical_reads, io.physical_reads),
            est_rows: result.stats.est_rows,
            est_cost: result.stats.est_cost,
            qerror: result
                .stats
                .est_rows
                .map(|e| obs::planstore::q_error(e, rows as f64)),
        });
    }

    /// The session's `qerror_warn` threshold (≥ 1).
    fn qerror_warn(&self) -> f64 {
        self.vars
            .get_int(QERROR_WARN_VAR, QERROR_WARN_DEFAULT)
            .max(1) as f64
    }

    /// Deposit one executed SELECT into the plan store: root
    /// estimate-vs-actual on every path, per-node and per-scan q-errors
    /// when the instrumented executor ran (`EXPLAIN ANALYZE`), and a
    /// root-attributed per-table scan q-error on plain linear plans so
    /// the stale-statistics advisor sees ordinary traffic too.
    fn record_plan_observation(
        &self,
        phys: &PhysNode,
        digest: Option<u64>,
        actual_rows: u64,
        elapsed: Duration,
        actuals: Option<&[NodeActuals]>,
    ) {
        let Some(digest) = digest else { return };
        let warn = self.qerror_warn();
        let (node_qerror_max, scans) = match actuals {
            Some(actuals) => {
                let mut scans = Vec::new();
                let mut worst = 1.0f64;
                for (node, a) in phys.preorder().into_iter().zip(actuals) {
                    let per_loop = a.rows as f64 / a.loops.max(1) as f64;
                    let q = obs::planstore::q_error(node.est_rows, per_loop);
                    worst = worst.max(q);
                    if let Some((table, class)) = node.leaf_scan_class() {
                        scans.push(obs::planstore::ScanObservation {
                            table,
                            class,
                            qerror: q,
                        });
                    }
                }
                (Some(worst), scans)
            }
            None => {
                let scans = phys
                    .scan_attribution()
                    .map(|(table, class)| {
                        vec![obs::planstore::ScanObservation {
                            table,
                            class,
                            qerror: obs::planstore::q_error(phys.est_rows, actual_rows as f64),
                        }]
                    })
                    .unwrap_or_default();
                (None, scans)
            }
        };
        obs::planstore::record(obs::planstore::Observation {
            engine_id: self.engine.engine_id,
            digest,
            root: phys.op_name(),
            est_rows: phys.est_rows,
            est_cost: phys.est_cost,
            actual_rows,
            elapsed,
            qerror_warn: warn,
            node_qerror_max,
            scans,
        });
    }

    /// Statement pipeline behind [`Session::execute`] (plan-cache fast
    /// path, parse, dispatch), with the per-statement metrics.
    fn execute_tracked(&mut self, sql_text: &str) -> Result<QueryResult> {
        let metrics = obs::metrics();
        let total_start = Instant::now();
        // Plan-cache fast path: a hit skips parse/bind/plan entirely.  A
        // failed transaction must not take it — the gate that rejects
        // statements until COMMIT/ROLLBACK lives in `dispatch`, and a
        // cached SELECT would otherwise happily read the dead snapshot.
        let in_failed_txn = self.txn.as_ref().is_some_and(|t| t.failed);
        if !in_failed_txn {
            if let Some(mut result) = self.run_cached_select(sql_text)? {
                metrics.queries_total.inc();
                metrics.query_rows_total.add(result.rows.len() as u64);
                metrics
                    .query_latency_seconds
                    .observe_duration(total_start.elapsed());
                let mut t = QueryTrace::new();
                t.record("execute", result.stats.exec_time);
                result.stats.trace = Some(t);
                return Ok(result);
            }
        }
        let parse_start = Instant::now();
        let stmt = sql::parse(sql_text)?;
        let parse_time = parse_start.elapsed();
        metrics
            .stage_parse_ns_total
            .add(parse_time.as_nanos() as u64);
        let result = self.dispatch(stmt, sql_text);
        metrics.queries_total.inc();
        let mut result = result?;
        metrics.query_rows_total.add(result.rows.len() as u64);
        metrics
            .query_latency_seconds
            .observe_duration(total_start.elapsed());
        match result.stats.trace.as_mut() {
            Some(t) => t.prepend("parse", parse_time),
            None => {
                let mut t = QueryTrace::new();
                t.record("parse", parse_time);
                result.stats.trace = Some(t);
            }
        }
        Ok(result)
    }

    /// Convenience: execute and return rows.
    pub fn query(&mut self, sql_text: &str) -> Result<Vec<Row>> {
        Ok(self.execute(sql_text)?.rows)
    }

    /// Read-only query through a shared reference: safe to call while the
    /// same session object is shared immutably across threads.  Only
    /// `SELECT` is accepted; uses (and fills) the plan cache.
    pub fn query_ref(&self, sql_text: &str) -> Result<Vec<Row>> {
        if self.txn.as_ref().is_some_and(|t| t.failed) {
            return Err(Error::Execution(
                "current transaction is aborted, commands ignored until \
                 COMMIT or ROLLBACK"
                    .into(),
            ));
        }
        let metrics = obs::metrics();
        let start = Instant::now();
        if let Some(result) = self.run_cached_select(sql_text)? {
            metrics.queries_total.inc();
            metrics.query_rows_total.add(result.rows.len() as u64);
            metrics
                .query_latency_seconds
                .observe_duration(start.elapsed());
            return Ok(result.rows);
        }
        let stmt = sql::parse(sql_text)?;
        let sel = match stmt {
            Statement::Select(s) => s,
            _ => return Err(Error::Binder("query_ref only accepts SELECT".into())),
        };
        let catalog = self.engine.catalog();
        let epoch = self.engine.schema_epoch();
        let logical = sql::bind(&sel, &catalog)?;
        let phys = Arc::new(opt::plan(
            &logical,
            &catalog,
            &self.engine.pool,
            &self.vars,
        )?);
        self.cache_plan(sql_text, Arc::clone(&phys), epoch);
        let stats = ExecStats::default();
        let ctx = ExecCtx {
            catalog: &catalog,
            pool: &self.engine.pool,
            session: &self.vars,
            stats: &stats,
            exec_pool: Some(&self.engine.exec_pool),
            vis: self.statement_visibility(),
        };
        let rows = run_to_vec(&phys, &ctx)?;
        metrics.queries_total.inc();
        metrics.query_rows_total.add(rows.len() as u64);
        metrics
            .query_latency_seconds
            .observe_duration(start.elapsed());
        Ok(rows)
    }

    /// Plan a SELECT without executing it (benches compare predicted cost
    /// against measured runtime — Figure 6).
    pub fn plan_select(&self, sql_text: &str) -> Result<PhysNode> {
        let stmt = sql::parse(sql_text)?;
        let sel = match stmt {
            Statement::Select(s) | Statement::Explain { select: s, .. } => s,
            _ => return Err(Error::Binder("plan_select expects a SELECT".into())),
        };
        let catalog = self.engine.catalog();
        let logical = sql::bind(&sel, &catalog)?;
        opt::plan(&logical, &catalog, &self.engine.pool, &self.vars)
    }

    /// Execute a semicolon-separated script; returns the result of the
    /// last statement.  Quotes are respected when splitting.  A failure is
    /// wrapped in [`Error::Script`] carrying the 1-based ordinal and a
    /// snippet of the failing statement.
    pub fn execute_script(&mut self, script: &str) -> Result<QueryResult> {
        let mut last = QueryResult::default();
        let mut ordinal = 0usize;
        let mut run = |this: &mut Self, text: &str, last: &mut QueryResult| -> Result<()> {
            ordinal += 1;
            match this.execute(text) {
                Ok(r) => {
                    *last = r;
                    Ok(())
                }
                Err(e) => Err(Error::Script {
                    ordinal,
                    snippet: snippet_of(text),
                    source: Box::new(e),
                }),
            }
        };
        let mut stmt = String::new();
        let mut in_str = false;
        let mut in_comment = false;
        let mut prev = '\0';
        for ch in script.chars() {
            if in_comment {
                if ch == '\n' {
                    in_comment = false;
                    stmt.push(ch);
                }
                prev = ch;
                continue;
            }
            match ch {
                '\'' => {
                    in_str = !in_str;
                    stmt.push(ch);
                }
                '-' if !in_str && prev == '-' => {
                    // `--` line comment: drop it (and the `-` already
                    // buffered) so a `;` inside the comment cannot split.
                    stmt.pop();
                    in_comment = true;
                }
                ';' if !in_str => {
                    if !stmt.trim().is_empty() {
                        run(self, stmt.trim(), &mut last)?;
                    }
                    stmt.clear();
                }
                _ => stmt.push(ch),
            }
            prev = ch;
        }
        if !stmt.trim().is_empty() {
            run(self, stmt.trim(), &mut last)?;
        }
        Ok(last)
    }

    // ------------------------------------------------------- dispatching

    /// The visibility this statement reads with: the open transaction's
    /// snapshot (and id, for read-your-own-writes), or a fresh autocommit
    /// snapshot when no transaction is open.
    fn statement_visibility(&self) -> TxnVisibility {
        match &self.txn {
            Some(t) => TxnVisibility {
                txn: t.id,
                snap: t.snap.clone(),
            },
            None => self.engine.fresh_visibility(),
        }
    }

    /// `BEGIN`: allocate a transaction id and capture the snapshot every
    /// statement of the transaction will read against.
    fn txn_begin(&mut self) -> Result<QueryResult> {
        if self.txn.is_some() {
            return Err(Error::Execution(
                "a transaction is already in progress".into(),
            ));
        }
        let id = self.engine.txns.begin();
        self.txn = Some(SessionTxn {
            id,
            snap: self.engine.txns.snapshot(),
            failed: false,
        });
        self.slot.set_txn(id);
        Ok(QueryResult::default())
    }

    /// `COMMIT`: make the open transaction's writes visible (and durable,
    /// via the group-commit rendezvous).  A failed transaction rolls back
    /// instead, PostgreSQL-style.  No open transaction is a no-op.
    fn txn_commit(&mut self) -> Result<QueryResult> {
        let Some(t) = self.txn.take() else {
            return Ok(QueryResult::default());
        };
        self.slot.set_txn(0);
        if t.failed {
            self.engine.log(WalRecord::Abort { txn: t.id })?;
            self.engine.txns.abort(t.id);
            return Ok(QueryResult::default());
        }
        self.engine.log(WalRecord::Commit { txn: t.id })?;
        self.engine.txns.commit(t.id);
        self.set_stage(Stage::Commit);
        self.engine.wal_commit()?;
        Ok(QueryResult::default())
    }

    /// `ROLLBACK`: abort the open transaction — its versions stay dead
    /// for every snapshot until checkpoint vacuum reclaims them.  No open
    /// transaction is a no-op.
    fn txn_rollback(&mut self) -> Result<QueryResult> {
        let Some(t) = self.txn.take() else {
            return Ok(QueryResult::default());
        };
        self.slot.set_txn(0);
        // No fsync: an abort needs no durability guarantee — if the Abort
        // record is lost, replay drops the transaction's records anyway
        // for want of a Commit.
        self.engine.log(WalRecord::Abort { txn: t.id })?;
        self.engine.txns.abort(t.id);
        Ok(QueryResult::default())
    }

    fn dispatch(&mut self, stmt: Statement, sql_text: &str) -> Result<QueryResult> {
        // Transaction control manages session state directly.
        match stmt {
            Statement::Begin => return self.txn_begin(),
            Statement::Commit => return self.txn_commit(),
            Statement::Rollback => return self.txn_rollback(),
            _ => {}
        }
        if let Some(t) = &self.txn {
            if t.failed {
                return Err(Error::Execution(
                    "current transaction is aborted, commands ignored until \
                     COMMIT or ROLLBACK"
                        .into(),
                ));
            }
            if matches!(
                stmt,
                Statement::CreateTable { .. }
                    | Statement::CreateIndex { .. }
                    | Statement::DropTable { .. }
                    | Statement::DropIndex { .. }
            ) {
                return Err(Error::Execution(
                    "DDL is not supported inside an explicit transaction".into(),
                ));
            }
        }
        // Statements that appended WAL records finish with a group-commit
        // rendezvous — decided up front because the match consumes `stmt`.
        // The commit must happen *after* `dispatch_stmt` returns (locks
        // released), or concurrent writers would fsync one at a time under
        // the DML lock and group commit would never batch.  Inside an
        // explicit transaction nothing is durable until COMMIT, so no
        // per-statement rendezvous there.
        let in_txn = self.txn.is_some();
        let needs_commit = !in_txn
            && matches!(
                stmt,
                Statement::CreateTable { .. }
                    | Statement::CreateIndex { .. }
                    | Statement::DropTable { .. }
                    | Statement::DropIndex { .. }
                    | Statement::Insert { .. }
                    | Statement::InsertSelect { .. }
                    | Statement::Update { .. }
                    | Statement::Delete { .. }
            );
        // An autocommit write runs inside an ephemeral transaction: its
        // versions are stamped with a real id, its WAL records are gated
        // on the Commit record appended below, and a mid-statement error
        // aborts it — partial effects never become visible or durable.
        let is_write = matches!(
            stmt,
            Statement::Insert { .. }
                | Statement::InsertSelect { .. }
                | Statement::Update { .. }
                | Statement::Delete { .. }
        );
        let ephemeral = if is_write && !in_txn {
            let id = self.engine.txns.begin();
            self.txn = Some(SessionTxn {
                id,
                snap: self.engine.txns.snapshot(),
                failed: false,
            });
            Some(id)
        } else {
            None
        };
        let result = self.dispatch_stmt(stmt, sql_text);
        if let Some(id) = ephemeral {
            self.txn = None;
            match &result {
                Ok(_) => {
                    self.engine.log(WalRecord::Commit { txn: id })?;
                    self.engine.txns.commit(id);
                }
                Err(_) => {
                    let _ = self.engine.log(WalRecord::Abort { txn: id });
                    self.engine.txns.abort(id);
                }
            }
        } else if result.is_err() {
            if let Some(t) = &mut self.txn {
                t.failed = true;
            }
        }
        let result = result?;
        if needs_commit {
            // The group-commit rendezvous can park behind another leader's
            // fsync: surface it as its own stage and wait class.
            self.set_stage(Stage::Commit);
            self.engine.wal_commit()?;
        }
        Ok(result)
    }

    fn dispatch_stmt(&mut self, stmt: Statement, sql_text: &str) -> Result<QueryResult> {
        match stmt {
            Statement::CreateTable { name, columns } => {
                let mut catalog = self.engine.catalog_mut();
                // Check the name *before* creating the heap: the heap file
                // is allocated from the backend, and a duplicate-name error
                // after allocation would leak the file id.
                if catalog.has_table(&name) {
                    return Err(Error::Catalog(format!(
                        "table {:?} already exists",
                        name.to_lowercase()
                    )));
                }
                let schema = schema_from_ddl(&catalog, &columns)?;
                let heap = HeapFile::create(&self.engine.pool)?;
                catalog.create_table(&name, schema, heap)?;
                // Log while still holding the catalog write guard (WAL is
                // rank 5, catalog rank 1 — hierarchy-safe): once the guard
                // drops the table is visible, and a concurrent insert could
                // otherwise win the WAL mutex and log before our Ddl
                // record.  Replay assigns table ids by record order, so
                // that reordering corrupts recovery.
                self.engine.log(WalRecord::Ddl {
                    sql: sql_text.to_string(),
                })?;
                Ok(QueryResult::default())
            }
            Statement::CreateIndex {
                name,
                table,
                column,
                using,
            } => {
                let mut catalog = self.engine.catalog_mut();
                let meta = catalog.table(&table)?;
                let col = meta
                    .schema
                    .index_of(&column)
                    .ok_or_else(|| Error::Binder(format!("no column {column:?} in {table:?}")))?;
                let idx = catalog.create_index(&table, &name, col, &using)?;
                // Back-fill from the heap (still under the write guard, so
                // no insert can slip between scan and index visibility).
                let arity = meta.schema.len();
                let mut instance = idx.instance.write();
                let mut scan_err = None;
                // Every version is indexed regardless of visibility: an
                // in-flight insert may commit later, and scans filter
                // stale entries through their snapshot anyway.
                let scan_result = meta.heap.scan(&self.engine.pool, |tid, bytes| {
                    match split_version(bytes).and_then(|(_, _, rest)| decode_row(rest, arity)) {
                        Ok(row) => {
                            if let Err(e) = instance.insert(&row[col], tid) {
                                scan_err = Some(e);
                                return false;
                            }
                        }
                        Err(e) => {
                            scan_err = Some(e);
                            return false;
                        }
                    }
                    true
                });
                drop(instance);
                // A failed back-fill must unregister the index before the
                // guard drops, or later queries would use a partial index
                // and silently miss rows.
                if let Some(e) = scan_result.err().or(scan_err) {
                    let _ = catalog.drop_index(&name);
                    return Err(e);
                }
                // Log under the catalog write guard (WAL rank 5 > catalog
                // rank 1) so concurrent DDL/DML cannot log ahead of this
                // record — replay depends on record order.
                self.engine.log(WalRecord::Ddl {
                    sql: sql_text.to_string(),
                })?;
                Ok(QueryResult::default())
            }
            Statement::DropTable { name } => {
                let mut catalog = self.engine.catalog_mut();
                catalog.drop_table(&name)?;
                // Logged like every other DDL (an unlogged DROP would
                // resurrect the table on replay); the guard is still held
                // so no concurrent record can order ahead of this one.
                self.engine.log(WalRecord::Ddl {
                    sql: sql_text.to_string(),
                })?;
                Ok(QueryResult::default())
            }
            Statement::DropIndex { name } => {
                let mut catalog = self.engine.catalog_mut();
                catalog.drop_index(&name)?;
                self.engine.log(WalRecord::Ddl {
                    sql: sql_text.to_string(),
                })?;
                Ok(QueryResult::default())
            }
            Statement::Insert { table, rows } => {
                let txn = self.writer_txn_id();
                let _writer = self.engine.dml_lock.lock();
                let catalog = self.engine.catalog();
                let mut affected = 0u64;
                for row_exprs in rows {
                    let mut row = Row::with_capacity(row_exprs.len());
                    for e in &row_exprs {
                        let bound = sql::bind_const_expr(e, &catalog)?;
                        let ctx = EvalCtx::new(&catalog, &self.vars);
                        row.push(bound.eval(&[], &ctx)?);
                    }
                    self.insert_row_in(&catalog, &table, row, txn)?;
                    affected += 1;
                }
                Ok(QueryResult {
                    affected,
                    ..QueryResult::default()
                })
            }
            Statement::InsertSelect { table, select } => {
                let txn = self.writer_txn_id();
                let _writer = self.engine.dml_lock.lock();
                let catalog = self.engine.catalog();
                let result = self.run_select_in(&catalog, &select, ExplainMode::Off, None)?;
                let mut affected = 0u64;
                for row in result.rows {
                    self.insert_row_in(&catalog, &table, row, txn)?;
                    affected += 1;
                }
                Ok(QueryResult {
                    affected,
                    ..QueryResult::default()
                })
            }
            Statement::Update {
                table,
                sets,
                filter,
            } => {
                let _writer = self.engine.dml_lock.lock();
                let catalog = self.engine.catalog();
                let meta = catalog.table(&table)?;
                let filter = filter
                    .map(|f| sql::bind_single_table(&f, &meta.name, &meta.schema, &catalog))
                    .transpose()?;
                let mut bound_sets = Vec::with_capacity(sets.len());
                for (col, e) in &sets {
                    let idx = meta
                        .schema
                        .index_of(col)
                        .ok_or_else(|| Error::Binder(format!("no column {col:?} in {table:?}")))?;
                    let bound = sql::bind_single_table(e, &meta.name, &meta.schema, &catalog)?;
                    bound_sets.push((idx, bound));
                }
                let vis = self.statement_visibility();
                let n = self.update_where(&catalog, &table, &bound_sets, filter.as_ref(), &vis)?;
                Ok(QueryResult {
                    affected: n,
                    ..QueryResult::default()
                })
            }
            Statement::Delete { table, filter } => {
                let _writer = self.engine.dml_lock.lock();
                let catalog = self.engine.catalog();
                let meta = catalog.table(&table)?;
                let filter = filter
                    .map(|f| sql::bind_single_table(&f, &meta.name, &meta.schema, &catalog))
                    .transpose()?;
                let vis = self.statement_visibility();
                let n = self.delete_where(&catalog, &table, filter.as_ref(), &vis)?;
                Ok(QueryResult {
                    affected: n,
                    ..QueryResult::default()
                })
            }
            Statement::Select(sel) => {
                let catalog = self.engine.catalog();
                self.run_select_in(&catalog, &sel, ExplainMode::Off, Some(sql_text))
            }
            Statement::Explain { select, analyze } => {
                let catalog = self.engine.catalog();
                self.run_select_in(
                    &catalog,
                    &select,
                    if analyze {
                        ExplainMode::Analyze
                    } else {
                        ExplainMode::PlanOnly
                    },
                    None,
                )
            }
            Statement::Set { name, value } => {
                let catalog = self.engine.catalog();
                let bound = sql::bind_const_expr(&value, &catalog)?;
                let ctx = EvalCtx::new(&catalog, &self.vars);
                let v = bound.eval(&[], &ctx)?;
                drop(catalog);
                // `wal_sync_mode` steers the engine-shared WAL, not the
                // session: validate and forward before recording the text
                // in the session vars (so SHOW still works).
                if name.eq_ignore_ascii_case("wal_sync_mode") {
                    let mode = v.as_text().and_then(SyncMode::parse).ok_or_else(|| {
                        Error::Binder(
                            "wal_sync_mode must be 'off', 'flush', 'fsync' or \
                             'fsync_per_record'"
                                .into(),
                        )
                    })?;
                    self.engine.set_wal_sync_mode(mode);
                }
                // No cache invalidation needed: the session fingerprint is
                // part of the plan-cache key, so a changed variable simply
                // keys to different entries.
                self.vars.set(&name, v);
                Ok(QueryResult::default())
            }
            Statement::Show { name } => self.show(&name),
            Statement::Analyze { table } => {
                match table {
                    Some(t) => self.analyze(&t)?,
                    None => self.analyze_all()?,
                }
                Ok(QueryResult::default())
            }
            Statement::Begin | Statement::Commit | Statement::Rollback => {
                unreachable!("transaction control is handled in dispatch")
            }
        }
    }

    /// The transaction id DML stamps into `xmin`/`xmax` and its WAL
    /// records.  `dispatch` guarantees every write statement runs inside a
    /// transaction (explicit or the ephemeral autocommit wrapper).
    fn writer_txn_id(&self) -> u64 {
        self.txn
            .as_ref()
            .expect("write statements run inside a transaction")
            .id
    }

    fn show(&self, name: &str) -> Result<QueryResult> {
        match name.to_ascii_lowercase().as_str() {
            // Engine metrics surfaces (the registry is process-wide).
            "stats" => {
                let _ = obs::metrics(); // ensure engine metrics exist
                let rows = obs::global()
                    .samples()
                    .into_iter()
                    .map(|(n, v)| vec![Datum::text(n), Datum::Float(v)])
                    .collect();
                Ok(QueryResult {
                    schema: Schema::new(vec![
                        Column::new("metric", DataType::Text),
                        Column::new("value", DataType::Float),
                    ]),
                    rows,
                    ..QueryResult::default()
                })
            }
            "stats_json" => {
                let _ = obs::metrics();
                Ok(QueryResult {
                    schema: Schema::new(vec![Column::new("stats_json", DataType::Text)]),
                    rows: vec![vec![Datum::text(obs::global().render_json())]],
                    ..QueryResult::default()
                })
            }
            "stats_prometheus" => {
                let _ = obs::metrics();
                Ok(QueryResult {
                    schema: Schema::new(vec![Column::new("stats_prometheus", DataType::Text)]),
                    rows: vec![vec![Datum::text(obs::global().render_prometheus())]],
                    ..QueryResult::default()
                })
            }
            // Live activity of every session on *this* engine.  Reads only
            // atomics on the observed slots, so it never blocks the queries
            // it observes.
            "activity" => {
                let rows = obs::activity::snapshot()
                    .into_iter()
                    .filter(|r| r.engine_id == self.engine.engine_id)
                    .map(|r| {
                        vec![
                            Datum::Int(r.session_id as i64),
                            Datum::Int(r.query_id as i64),
                            Datum::Int(r.txn_id as i64),
                            Datum::text(r.stage.name()),
                            Datum::Int(r.rows as i64),
                            Datum::Int(r.workers as i64),
                            Datum::Float(r.elapsed_ms),
                            Datum::text(&r.sql),
                        ]
                    })
                    .collect();
                Ok(QueryResult {
                    schema: Schema::new(vec![
                        Column::new("session_id", DataType::Int),
                        Column::new("query_id", DataType::Int),
                        Column::new("txn", DataType::Int),
                        Column::new("stage", DataType::Text),
                        Column::new("rows", DataType::Int),
                        Column::new("workers", DataType::Int),
                        Column::new("elapsed_ms", DataType::Float),
                        Column::new("sql", DataType::Text),
                    ]),
                    rows,
                    ..QueryResult::default()
                })
            }
            // Per-plan-digest estimate-vs-actual aggregates for this
            // engine (the cost-model feedback loop; `SHOW PLAN STATS`).
            "plan_stats" => {
                let rows = obs::planstore::snapshot(Some(self.engine.engine_id))
                    .into_iter()
                    .map(|e| {
                        vec![
                            Datum::text(format!("{:016x}", e.digest)),
                            Datum::text(&e.root),
                            Datum::Int(e.calls as i64),
                            Datum::Float(e.mean().as_secs_f64() * 1e3),
                            Datum::Float(e.max.as_secs_f64() * 1e3),
                            Datum::Float(e.est_cost),
                            Datum::Float(e.est_rows),
                            Datum::Int(e.last_actual_rows as i64),
                            Datum::Float(e.qerror_last),
                            Datum::Float(e.qerror_max),
                        ]
                    })
                    .collect();
                Ok(QueryResult {
                    schema: Schema::new(vec![
                        Column::new("plan_digest", DataType::Text),
                        Column::new("root", DataType::Text),
                        Column::new("calls", DataType::Int),
                        Column::new("mean_ms", DataType::Float),
                        Column::new("max_ms", DataType::Float),
                        Column::new("est_cost", DataType::Float),
                        Column::new("est_rows", DataType::Float),
                        Column::new("last_rows", DataType::Int),
                        Column::new("qerror_last", DataType::Float),
                        Column::new("qerror_max", DataType::Float),
                    ]),
                    rows,
                    ..QueryResult::default()
                })
            }
            // Stale-statistics advisories currently raised on this
            // engine (`SHOW ADVISORIES`).
            "advisories" => {
                let rows = obs::planstore::advisories(Some(self.engine.engine_id))
                    .into_iter()
                    .map(|a| {
                        vec![
                            Datum::text(&a.table),
                            Datum::Float(a.qerror),
                            Datum::Int(a.window as i64),
                            Datum::text(&a.recommendation),
                        ]
                    })
                    .collect();
                Ok(QueryResult {
                    schema: Schema::new(vec![
                        Column::new("table", DataType::Text),
                        Column::new("qerror", DataType::Float),
                        Column::new("window", DataType::Int),
                        Column::new("recommendation", DataType::Text),
                    ]),
                    rows,
                    ..QueryResult::default()
                })
            }
            // Completed-query ring for this engine, one JSON object per row.
            "flight_recorder" => {
                let rows = obs::flight::snapshot()
                    .into_iter()
                    .filter(|r| r.engine_id == self.engine.engine_id)
                    .map(|r| vec![Datum::text(r.to_json())])
                    .collect();
                Ok(QueryResult {
                    schema: Schema::new(vec![Column::new("flight_record", DataType::Text)]),
                    rows,
                    ..QueryResult::default()
                })
            }
            _ => {
                let v = self.vars.get(name).cloned().unwrap_or(Datum::Null);
                Ok(QueryResult {
                    schema: Schema::new(vec![Column::new(name, DataType::Text)]),
                    rows: vec![vec![Datum::text(v.to_string())]],
                    ..QueryResult::default()
                })
            }
        }
    }

    // -------------------------------------------------------- plan cache

    /// Cache key for a SELECT's text, or `None` for non-SELECT statements.
    fn cache_key(&self, sql_text: &str) -> Option<(String, u64)> {
        let norm = normalize_sql(sql_text);
        if norm.starts_with("select ") {
            let fp = self.vars.fingerprint();
            Some((norm, fp))
        } else {
            None
        }
    }

    /// Execute `sql_text` through a cached plan, if one is present.
    fn run_cached_select(&self, sql_text: &str) -> Result<Option<QueryResult>> {
        let Some(key) = self.cache_key(sql_text) else {
            return Ok(None);
        };
        let metrics = obs::metrics();
        // The catalog read guard is held across lookup *and* execution so
        // the epoch cannot move under a running plan.
        let catalog = self.engine.catalog();
        let epoch = self.engine.schema_epoch();
        let Some(plan) = self.engine.plan_cache.lookup(&key, epoch) else {
            metrics.plan_cache_misses_total.inc();
            return Ok(None);
        };
        metrics.plan_cache_hits_total.inc();
        self.set_stage(Stage::Execute);
        let stats = ExecStats::default();
        let io_before = self.engine.pool.stats();
        let start = Instant::now();
        let ctx = ExecCtx {
            catalog: &catalog,
            pool: &self.engine.pool,
            session: &self.vars,
            stats: &stats,
            exec_pool: Some(&self.engine.exec_pool),
            vis: self.statement_visibility(),
        };
        let rows = run_to_vec(&plan, &ctx)?;
        let exec_time = start.elapsed();
        metrics
            .stage_execute_ns_total
            .add(exec_time.as_nanos() as u64);
        let io = self.engine.pool.stats().since(&io_before);
        let plan_digest = obs::enabled().then(|| plan.digest());
        self.record_plan_observation(&plan, plan_digest, rows.len() as u64, exec_time, None);
        Ok(Some(QueryResult {
            schema: plan.schema.clone(),
            rows,
            explain: Some(plan.explain()),
            affected: 0,
            stats: RunStats {
                io,
                index_node_visits: stats.index_node_visits.get(),
                ext_op_calls: stats.ext_op_calls.get(),
                batches: stats.batches_out.get(),
                exec_time,
                est_cost: Some(plan.est_cost),
                est_rows: Some(plan.est_rows),
                trace: None,
                plan_digest,
                ..RunStats::default()
            },
        }))
    }

    fn cache_plan(&self, sql_text: &str, plan: Arc<PhysNode>, epoch: u64) {
        if let Some(key) = self.cache_key(sql_text) {
            self.engine.plan_cache.insert(key, plan, epoch);
        }
    }

    // ---------------------------------------------------------- selects

    fn run_select_in(
        &self,
        catalog: &Catalog,
        sel: &sql::SelectStmt,
        mode: ExplainMode,
        cache_sql: Option<&str>,
    ) -> Result<QueryResult> {
        let metrics = obs::metrics();
        let mut trace = QueryTrace::new();
        // Epoch is read under the caller's catalog guard, *before*
        // planning: if a DDL bumps it after we release, the entry we
        // insert carries the stale epoch and is rejected on lookup.
        let epoch = self.engine.schema_epoch();
        self.set_stage(Stage::Bind);
        let bind_start = Instant::now();
        let logical = sql::bind(sel, catalog)?;
        let bind_time = bind_start.elapsed();
        trace.record("bind", bind_time);
        metrics.stage_bind_ns_total.add(bind_time.as_nanos() as u64);
        self.set_stage(Stage::Plan);
        let plan_start = Instant::now();
        let phys = Arc::new(opt::plan(&logical, catalog, &self.engine.pool, &self.vars)?);
        let plan_time = plan_start.elapsed();
        trace.record("plan", plan_time);
        metrics.stage_plan_ns_total.add(plan_time.as_nanos() as u64);
        let plan_digest = obs::enabled().then(|| phys.digest());
        match mode {
            ExplainMode::PlanOnly => {
                let text = phys.explain();
                return Ok(QueryResult {
                    schema: Schema::new(vec![Column::new("query plan", DataType::Text)]),
                    rows: text.lines().map(|l| vec![Datum::text(l)]).collect(),
                    explain: Some(text),
                    stats: RunStats {
                        trace: Some(trace),
                        plan_digest,
                        ..RunStats::default()
                    },
                    ..QueryResult::default()
                });
            }
            ExplainMode::Analyze => {
                // Execute through the instrumented tree, then annotate
                // every plan node with its measured actuals — exactly how
                // the Figure 6 experiment gathers its (predicted cost,
                // actual runtime) pairs, now at per-operator granularity.
                self.set_stage(Stage::Execute);
                let stats = ExecStats::default();
                let io_before = self.engine.pool.stats();
                let start = Instant::now();
                let ctx = ExecCtx {
                    catalog,
                    pool: &self.engine.pool,
                    session: &self.vars,
                    stats: &stats,
                    exec_pool: Some(&self.engine.exec_pool),
                    vis: self.statement_visibility(),
                };
                let (mut exec, instr) = build_instrumented(&phys, &ctx)?;
                // Same guard as `run_to_vec`: EXPLAIN ANALYZE executes the
                // query for real, so it must honor `max_rows` too.
                let max_rows = self.vars.get_int(MAX_ROWS_VAR, 0).max(0) as u64;
                let mut rows = Vec::new();
                if crate::exec::batch_enabled(&self.vars) {
                    let batch_rows = crate::exec::effective_batch_size(&self.vars);
                    let mut batches = 0u64;
                    while let Some(batch) = exec.next_batch(&ctx, batch_rows)? {
                        if max_rows > 0 && (rows.len() + batch.len()) as u64 > max_rows {
                            return Err(Error::MaxRows { limit: max_rows });
                        }
                        batches += 1;
                        rows.extend(batch.into_rows());
                    }
                    stats.batches_out.set(batches);
                } else {
                    while let Some(row) = exec.next(&ctx)? {
                        if max_rows > 0 && rows.len() as u64 >= max_rows {
                            return Err(Error::MaxRows { limit: max_rows });
                        }
                        rows.push(row);
                    }
                }
                stats.rows_out.set(rows.len() as u64);
                let elapsed = start.elapsed();
                metrics
                    .stage_execute_ns_total
                    .add(elapsed.as_nanos() as u64);
                let io = self.engine.pool.stats().since(&io_before);
                let actuals: Vec<NodeActuals> = instr
                    .per_node
                    .iter()
                    .map(|s| NodeActuals {
                        rows: s.rows.get(),
                        batches: s.batches.get(),
                        loops: s.loops.get(),
                        time: Duration::from_nanos(s.time_ns.get()),
                        pages: s.logical_reads.get(),
                        pages_read: s.physical_reads.get(),
                        index_node_visits: s.index_node_visits.get(),
                        ext_op_calls: s.ext_op_calls.get(),
                    })
                    .collect();
                // The `execute` stage becomes a span *tree*: one child per
                // plan operator (mirroring the plan pre-order, inclusive
                // times) plus one subtree per parallel scan with a span per
                // worker, so the trace reconciles with the printed actuals.
                let mut exec_children = vec![phys.span_tree(&actuals)];
                for (pi, p) in instr.parallel.iter().enumerate() {
                    let worker_spans: Vec<obs::Span> = p
                        .worker_busy_ns
                        .iter()
                        .enumerate()
                        .map(|(i, busy)| {
                            obs::Span::new(format!("worker {i}"), Duration::from_nanos(busy.get()))
                        })
                        .collect();
                    let busy_total: u64 = p.worker_busy_ns.iter().map(|c| c.get()).sum();
                    exec_children.push(obs::Span::with_children(
                        format!("parallel scan {pi} (workers={})", p.workers),
                        Duration::from_nanos(busy_total),
                        worker_spans,
                    ));
                }
                trace.record_span(obs::Span::with_children("execute", elapsed, exec_children));
                self.record_plan_observation(
                    &phys,
                    plan_digest,
                    rows.len() as u64,
                    elapsed,
                    Some(&actuals),
                );
                let mut text = phys.explain_with_actuals(&actuals, self.qerror_warn());
                text.push_str(&format!(
                    "Actual: rows={} batches={} time={:.3}ms logical_reads={} physical_reads={} index_node_visits={} ext_op_calls={}\n",
                    rows.len(),
                    stats.batches_out.get(),
                    elapsed.as_secs_f64() * 1000.0,
                    io.logical_reads,
                    io.physical_reads,
                    stats.index_node_visits.get(),
                    stats.ext_op_calls.get(),
                ));
                // Per-worker actuals of each parallel scan ride along as
                // trailer lines (keeping the one-entry-per-node pre-order
                // of `explain_with_actuals` undisturbed).
                for p in &instr.parallel {
                    text.push_str(&format!(
                        "Parallel: workers={} morsels={} gather_wait={:.3}ms\n",
                        p.workers,
                        p.morsels.get(),
                        p.gather_wait_ns.get() as f64 / 1e6,
                    ));
                    for (i, (rows_c, busy_c)) in
                        p.worker_rows.iter().zip(&p.worker_busy_ns).enumerate()
                    {
                        text.push_str(&format!(
                            "  Worker {i}: rows={} time={:.3}ms\n",
                            rows_c.get(),
                            busy_c.get() as f64 / 1e6,
                        ));
                    }
                }
                text.push_str(&format!("Stages: {}\n", trace.render()));
                return Ok(QueryResult {
                    schema: Schema::new(vec![Column::new("query plan", DataType::Text)]),
                    rows: text.lines().map(|l| vec![Datum::text(l)]).collect(),
                    explain: Some(text),
                    stats: RunStats {
                        io,
                        index_node_visits: stats.index_node_visits.get(),
                        ext_op_calls: stats.ext_op_calls.get(),
                        batches: stats.batches_out.get(),
                        exec_time: elapsed,
                        est_cost: Some(phys.est_cost),
                        est_rows: Some(phys.est_rows),
                        trace: Some(trace),
                        plan_digest,
                        ..RunStats::default()
                    },
                    ..QueryResult::default()
                });
            }
            ExplainMode::Off => {}
        }
        if let Some(sql_text) = cache_sql {
            self.cache_plan(sql_text, Arc::clone(&phys), epoch);
        }
        self.set_stage(Stage::Execute);
        let stats = ExecStats::default();
        let io_before = self.engine.pool.stats();
        let start = Instant::now();
        let ctx = ExecCtx {
            catalog,
            pool: &self.engine.pool,
            session: &self.vars,
            stats: &stats,
            exec_pool: Some(&self.engine.exec_pool),
            vis: self.statement_visibility(),
        };
        let rows = run_to_vec(&phys, &ctx)?;
        let exec_time = start.elapsed();
        trace.record("execute", exec_time);
        metrics
            .stage_execute_ns_total
            .add(exec_time.as_nanos() as u64);
        let io = self.engine.pool.stats().since(&io_before);
        self.record_plan_observation(&phys, plan_digest, rows.len() as u64, exec_time, None);
        Ok(QueryResult {
            schema: phys.schema.clone(),
            rows,
            explain: Some(phys.explain()),
            affected: 0,
            stats: RunStats {
                io,
                index_node_visits: stats.index_node_visits.get(),
                ext_op_calls: stats.ext_op_calls.get(),
                batches: stats.batches_out.get(),
                exec_time,
                est_cost: Some(phys.est_cost),
                est_rows: Some(phys.est_rows),
                trace: Some(trace),
                plan_digest,
                ..RunStats::default()
            },
        })
    }

    // --------------------------------------------------------------- DML

    /// Insert a pre-evaluated row (used by SQL INSERT, recovery, and bulk
    /// loaders).  Applies type checks, extension `on_insert` transforms
    /// (phoneme materialization), index maintenance and WAL logging.
    /// Inside an explicit transaction the row joins it; otherwise the
    /// insert autocommits in an ephemeral transaction of its own.
    pub fn insert_row(&mut self, table: &str, row: Row) -> Result<()> {
        if let Some(t) = &self.txn {
            let id = t.id;
            let _writer = self.engine.dml_lock.lock();
            let catalog = self.engine.catalog();
            return self.insert_row_in(&catalog, table, row, id);
        }
        let id = self.engine.txns.begin();
        let inserted = {
            let _writer = self.engine.dml_lock.lock();
            let catalog = self.engine.catalog();
            self.insert_row_in(&catalog, table, row, id)
        };
        match inserted {
            Ok(()) => {
                self.engine.log(WalRecord::Commit { txn: id })?;
                self.engine.txns.commit(id);
                // Durability rendezvous after the locks drop (group commit).
                self.engine.wal_commit()
            }
            Err(e) => {
                self.engine.txns.abort(id);
                Err(e)
            }
        }
    }

    /// Insert under an already-held catalog guard (and DML lock).  The
    /// heap tuple is stamped `xmin = txn, xmax = 0`; the WAL record
    /// carries the plain row bytes plus the transaction id, so replay can
    /// gate it on the transaction's Commit record.
    fn insert_row_in(&self, catalog: &Catalog, table: &str, row: Row, txn: u64) -> Result<()> {
        let meta = catalog.table(table)?;
        let row = prepare_row(catalog, &meta, row)?;
        let bytes = encode_row(&row);
        let tid = meta.heap.insert(
            &self.engine.pool,
            &encode_version(txn, INVALID_TXN_ID, &bytes),
        )?;
        for idx in catalog.indexes_of(meta.id) {
            idx.instance.write().insert(&row[idx.column], tid)?;
        }
        self.engine.log(WalRecord::Insert {
            table_id: meta.id.0,
            txn,
            tuple: bytes,
        })?;
        Ok(())
    }

    /// Collect the visible rows of `table` matching `filter`, with the
    /// tuple id, current `xmax`, decoded row and plain row bytes of each —
    /// the victim-selection pass shared by UPDATE and DELETE.
    #[allow(clippy::type_complexity)]
    fn collect_victims(
        &self,
        catalog: &Catalog,
        meta: &crate::catalog::TableMeta,
        filter: Option<&crate::expr::Expr>,
        vis: &TxnVisibility,
    ) -> Result<Vec<(crate::storage::TupleId, u64, Row, Vec<u8>)>> {
        let arity = meta.schema.len();
        let ctx = EvalCtx::new(catalog, &self.vars);
        let mut victims = Vec::new();
        let mut scan_err = None;
        meta.heap.scan(&self.engine.pool, |tid, bytes| {
            let parsed = split_version(bytes).and_then(|(xmin, xmax, rest)| {
                if !vis.sees(xmin, xmax) {
                    return Ok(None);
                }
                decode_row(rest, arity).map(|row| Some((xmax, row, rest.to_vec())))
            });
            match parsed {
                Ok(None) => {}
                Ok(Some((xmax, row, plain))) => {
                    let hit = match filter {
                        Some(f) => f.eval(&row, &ctx).map(|d| d.is_true()),
                        None => Ok(true),
                    };
                    match hit {
                        Ok(true) => victims.push((tid, xmax, row, plain)),
                        Ok(false) => {}
                        Err(e) => {
                            scan_err = Some(e);
                            return false;
                        }
                    }
                }
                Err(e) => {
                    scan_err = Some(e);
                    return false;
                }
            }
            true
        })?;
        if let Some(e) = scan_err {
            return Err(e);
        }
        Ok(victims)
    }

    /// First-updater-wins: a visible victim whose `xmax` carries another
    /// transaction that has not aborted was updated or deleted by a
    /// concurrent transaction after our snapshot — we lose.  Under the
    /// DML lock no `xmax` can change beneath us, so the check is a plain
    /// read.  An aborted `xmax` is reclaimable and re-stamped freely.
    fn check_write_conflicts(
        &self,
        table: &str,
        victims: &[(crate::storage::TupleId, u64, Row, Vec<u8>)],
    ) -> Result<()> {
        for (_, xmax, ..) in victims {
            if *xmax != INVALID_TXN_ID && !self.engine.txns.is_aborted(*xmax) {
                obs::metrics().txn_conflicts_total.inc();
                return Err(Error::Serialization(format!(
                    "row in {table:?} was updated by concurrent transaction {xmax}"
                )));
            }
        }
        Ok(())
    }

    /// UPDATE, MVCC-style: the old version is `xmax`-stamped in place and
    /// a new version is inserted with `xmin = us`, re-running the
    /// extension hooks (a changed UniText gets a fresh phoneme cache).
    /// The old version's index entries stay — concurrent snapshots still
    /// reach it through them, and visibility filters it for everyone
    /// else.
    fn update_where(
        &self,
        catalog: &Catalog,
        table: &str,
        sets: &[(usize, crate::expr::Expr)],
        filter: Option<&crate::expr::Expr>,
        vis: &TxnVisibility,
    ) -> Result<u64> {
        let meta = catalog.table(table)?;
        let ctx = EvalCtx::new(catalog, &self.vars);
        let me = vis.txn;
        let victims = self.collect_victims(catalog, &meta, filter, vis)?;
        self.check_write_conflicts(table, &victims)?;
        let n = victims.len() as u64;
        for (tid, _, old_row, old_plain) in victims {
            let mut new_row = old_row.clone();
            for (idx, e) in sets {
                new_row[*idx] = e.eval(&old_row, &ctx)?;
            }
            // The new image must be valid before touching the old one.
            let new_row = prepare_row(catalog, &meta, new_row)?;
            if !meta
                .heap
                .patch(&self.engine.pool, tid, 8, &me.to_le_bytes())?
            {
                return Err(Error::Execution(format!(
                    "update victim {tid:?} vanished mid-statement"
                )));
            }
            self.engine.log(WalRecord::Delete {
                table_id: meta.id.0,
                txn: me,
                tuple: old_plain,
            })?;
            let bytes = encode_row(&new_row);
            let new_tid = meta.heap.insert(
                &self.engine.pool,
                &encode_version(me, INVALID_TXN_ID, &bytes),
            )?;
            for idx in catalog.indexes_of(meta.id) {
                idx.instance.write().insert(&new_row[idx.column], new_tid)?;
            }
            self.engine.log(WalRecord::Insert {
                table_id: meta.id.0,
                txn: me,
                tuple: bytes,
            })?;
        }
        Ok(n)
    }

    /// DELETE, MVCC-style: victims are `xmax`-stamped, not removed — the
    /// version stays readable for snapshots that predate us and is
    /// physically reclaimed by checkpoint vacuum.
    fn delete_where(
        &self,
        catalog: &Catalog,
        table: &str,
        filter: Option<&crate::expr::Expr>,
        vis: &TxnVisibility,
    ) -> Result<u64> {
        let meta = catalog.table(table)?;
        let me = vis.txn;
        let victims = self.collect_victims(catalog, &meta, filter, vis)?;
        self.check_write_conflicts(table, &victims)?;
        let n = victims.len() as u64;
        for (tid, _, _, plain) in victims {
            if !meta
                .heap
                .patch(&self.engine.pool, tid, 8, &me.to_le_bytes())?
            {
                return Err(Error::Execution(format!(
                    "delete victim {tid:?} vanished mid-statement"
                )));
            }
            self.engine.log(WalRecord::Delete {
                table_id: meta.id.0,
                txn: me,
                tuple: plain,
            })?;
        }
        Ok(n)
    }

    /// Recovery helper: physically delete one version whose *row bytes*
    /// (version header excluded) match exactly.  Replay applies only
    /// committed work in log order on a single thread, so the physical
    /// delete is safe — there is no concurrent snapshot to preserve the
    /// version for.
    pub(crate) fn delete_matching_tuple(&mut self, table: &str, tuple: &[u8]) -> Result<()> {
        let _writer = self.engine.dml_lock.lock();
        let catalog = self.engine.catalog();
        let meta = catalog.table(table)?;
        let mut victim = None;
        meta.heap.scan(&self.engine.pool, |tid, bytes| {
            if bytes.len() >= VERSION_HEADER_LEN && &bytes[VERSION_HEADER_LEN..] == tuple {
                victim = Some(tid);
                false
            } else {
                true
            }
        })?;
        if let Some(tid) = victim {
            meta.heap.delete(&self.engine.pool, tid)?;
            let row = decode_row(tuple, meta.schema.len())?;
            for idx in catalog.indexes_of(meta.id) {
                idx.instance.write().delete(&row[idx.column], tid)?;
            }
        }
        Ok(())
    }

    /// ANALYZE: rebuild table and per-column statistics from a full pass.
    /// Bumps the schema epoch — fresh statistics can change plan choices,
    /// so cached plans are flushed.
    pub fn analyze(&mut self, table: &str) -> Result<()> {
        let catalog = self.engine.catalog();
        let meta = catalog.table(table)?;
        let arity = meta.schema.len();
        let mut columns: Vec<Vec<Datum>> = vec![Vec::new(); arity];
        let mut rows = 0u64;
        let mut scan_err = None;
        // Statistics describe what queries can see: dead and in-flight
        // versions are skipped under a fresh snapshot.
        let vis = self.engine.fresh_visibility();
        meta.heap.scan(&self.engine.pool, |_, bytes| {
            match split_version(bytes).and_then(|(xmin, xmax, rest)| {
                if !vis.sees(xmin, xmax) {
                    return Ok(None);
                }
                decode_row(rest, arity).map(Some)
            }) {
                Ok(None) => {}
                Ok(Some(row)) => {
                    rows += 1;
                    for (i, d) in row.into_iter().enumerate() {
                        columns[i].push(d);
                    }
                }
                Err(e) => {
                    scan_err = Some(e);
                    return false;
                }
            }
            true
        })?;
        if let Some(e) = scan_err {
            return Err(e);
        }
        let pages = meta.heap.pages(&self.engine.pool)? as u64;
        let stats = TableStats {
            rows,
            pages,
            columns: columns
                .iter()
                .map(|vals| Some(ColumnStats::build(vals)))
                .collect(),
        };
        *meta.stats.lock() = stats;
        let canonical = meta.name.clone();
        drop(catalog);
        self.engine.bump_schema_epoch();
        // Fresh statistics: retract any stale-statistics advisory on the
        // table (the advisor's recommended remediation just ran).
        obs::planstore::note_analyze(self.engine.engine_id, Some(&canonical));
        Ok(())
    }

    /// Bare `ANALYZE`: refresh statistics on every user table, then
    /// clear the engine's stale-statistics advisories wholesale.  Each
    /// per-table pass bumps the schema epoch, so cached plans are
    /// flushed exactly as for targeted ANALYZE.
    pub fn analyze_all(&mut self) -> Result<()> {
        let names: Vec<String> = self
            .engine
            .catalog()
            .tables()
            .map(|m| m.name.clone())
            .collect();
        for name in &names {
            self.analyze(name)?;
        }
        obs::planstore::note_analyze(self.engine.engine_id, None);
        Ok(())
    }
}

impl Drop for Session {
    /// A session dropped mid-transaction rolls it back: its writes were
    /// never durable (no Commit record), and leaving the id active would
    /// pin every snapshot's horizon and block checkpoints forever.
    fn drop(&mut self) {
        if let Some(t) = self.txn.take() {
            let _ = self.engine.log(WalRecord::Abort { txn: t.id });
            self.engine.txns.abort(t.id);
            self.slot.set_txn(0);
        }
    }
}

/// First ~80 characters of a statement, for script error reporting.
fn snippet_of(text: &str) -> String {
    const MAX: usize = 80;
    let trimmed = text.trim();
    if trimmed.chars().count() <= MAX {
        trimmed.to_string()
    } else {
        let cut: String = trimmed.chars().take(MAX).collect();
        format!("{cut}…")
    }
}

/// Resolve DDL column types against the catalog's type registry.
pub(crate) fn schema_from_ddl(catalog: &Catalog, columns: &[(String, String)]) -> Result<Schema> {
    let mut cols = Vec::with_capacity(columns.len());
    for (name, ty) in columns {
        let dt = match ty.to_lowercase().as_str() {
            "int" | "integer" | "bigint" => DataType::Int,
            "float" | "double" | "real" => DataType::Float,
            "text" | "varchar" | "string" => DataType::Text,
            "bool" | "boolean" => DataType::Bool,
            other => match catalog.type_by_name(other) {
                Some((id, _)) => DataType::Ext(id),
                None => return Err(Error::Binder(format!("unknown type {ty:?}"))),
            },
        };
        cols.push(Column::new(name.clone(), dt));
    }
    Ok(Schema::new(cols))
}

/// Type-check, coerce, and run extension insertion hooks on a row
/// destined for `meta` (shared by INSERT and UPDATE).
fn prepare_row(catalog: &Catalog, meta: &crate::catalog::TableMeta, mut row: Row) -> Result<Row> {
    if row.len() != meta.schema.len() {
        return Err(Error::Binder(format!(
            "{} expects {} values, got {}",
            meta.name,
            meta.schema.len(),
            row.len()
        )));
    }
    for (i, col) in meta.schema.columns().iter().enumerate() {
        // Numeric widening.
        if col.ty == DataType::Float {
            if let Datum::Int(v) = row[i] {
                row[i] = Datum::Float(v as f64);
            }
        }
        match (&row[i], col.ty) {
            (Datum::Null, _) => {}
            (d, ty) => {
                if d.data_type() != Some(ty) {
                    return Err(Error::Binder(format!(
                        "column {} expects {}, got {}",
                        col.name,
                        ty,
                        d.data_type().map(|t| t.to_string()).unwrap_or_default()
                    )));
                }
            }
        }
        // Extension insertion hook (e.g. UniText phoneme
        // materialization, §4.2).
        if let Datum::Ext { ty, bytes } = &row[i] {
            if let Some(def) = catalog.type_by_id(*ty) {
                if let Some(hook) = &def.on_insert {
                    let new_bytes = hook(bytes);
                    row[i] = Datum::ext(*ty, new_bytes);
                }
            }
        }
    }
    Ok(row)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalize_collapses_and_lowercases_outside_strings() {
        assert_eq!(
            normalize_sql("SELECT  *\n FROM   T  WHERE v = 'Ab  C'"),
            "select * from t where v = 'Ab  C'"
        );
        assert_eq!(normalize_sql("  select 1  "), "select 1");
    }

    /// `SET wal_sync_mode` issued while the engine is still WAL-less
    /// (recovery replay, pre-open configuration) must not be silently
    /// dropped: attach applies the pending mode over its own default.
    #[test]
    fn wal_sync_mode_set_before_attach_is_applied_at_attach() {
        let engine = Engine::in_memory();
        let mut s = engine.connect();
        assert_eq!(engine.wal_sync_mode(), None, "starts WAL-less");
        s.execute("SET wal_sync_mode = 'off'").unwrap();
        let path =
            std::env::temp_dir().join(format!("mlql-wal-pending-mode-{}", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let wal = crate::storage::Wal::open(&path, 0).unwrap();
        // Database::open attaches with its Fsync default; the earlier SET
        // must win.
        engine.attach_durability(Arc::new(SharedWal::new(wal, SyncMode::Fsync)), None);
        assert_eq!(engine.wal_sync_mode(), Some(SyncMode::Off));
        let _ = std::fs::remove_file(&path);
    }

    /// Vars set before the first query survive it — the session is not
    /// re-created (and its vars not reset) by lazy machinery downstream.
    #[test]
    fn vars_set_before_first_query_stick() {
        let engine = Engine::in_memory();
        let mut s = engine.connect();
        s.execute("SET parallel_workers = 3").unwrap();
        s.execute("SET max_rows = 500").unwrap();
        s.execute("CREATE TABLE t (id INT)").unwrap();
        s.execute("INSERT INTO t VALUES (1)").unwrap();
        assert_eq!(
            s.query("SELECT count(*) FROM t").unwrap()[0][0].as_int(),
            Some(1)
        );
        assert_eq!(s.vars().get_int("parallel_workers", 0), 3);
        assert_eq!(s.vars().get_int("max_rows", 0), 500);
        assert_eq!(crate::exec::effective_workers(s.vars()), 3);
    }

    #[test]
    fn sessions_share_one_engine() {
        let engine = Engine::in_memory();
        let mut s1 = engine.connect();
        let mut s2 = engine.connect();
        s1.execute("CREATE TABLE t (id INT)").unwrap();
        s1.execute("INSERT INTO t VALUES (1), (2), (3)").unwrap();
        let n = s2.query("SELECT count(*) FROM t").unwrap();
        assert_eq!(n[0][0].as_int(), Some(3));
    }

    #[test]
    fn session_vars_are_private_to_each_session() {
        let engine = Engine::in_memory();
        let mut s1 = engine.connect();
        let mut s2 = engine.connect();
        s1.execute("SET max_rows = 5").unwrap();
        assert_eq!(s1.vars().get_int("max_rows", 0), 5);
        assert_eq!(s2.vars().get_int("max_rows", 0), 0);
        let r = s2.execute("SHOW max_rows").unwrap();
        assert_eq!(r.rows[0][0].as_text(), Some("NULL"));
    }

    #[test]
    fn plan_cache_hits_on_repeat_and_flushes_on_ddl() {
        let engine = Engine::in_memory();
        let mut s = engine.connect();
        s.execute("CREATE TABLE t (id INT)").unwrap();
        s.execute("INSERT INTO t VALUES (1), (2)").unwrap();
        let hits0 = obs::metrics().plan_cache_hits_total.get();
        s.execute("SELECT count(*) FROM t").unwrap();
        assert_eq!(engine.cached_plan_count(), 1);
        s.execute("SELECT count(*) FROM t").unwrap();
        assert_eq!(obs::metrics().plan_cache_hits_total.get(), hits0 + 1);
        // Whitespace/case differences hit the same entry.
        s.execute("select   COUNT(*)  from T").unwrap();
        assert_eq!(obs::metrics().plan_cache_hits_total.get(), hits0 + 2);
        // DDL flushes.
        s.execute("CREATE TABLE u (id INT)").unwrap();
        assert_eq!(engine.cached_plan_count(), 0);
        // And the re-planned query is correct.
        let n = s.query("SELECT count(*) FROM t").unwrap();
        assert_eq!(n[0][0].as_int(), Some(2));
    }

    #[test]
    fn plan_cache_respects_session_vars() {
        let engine = Engine::in_memory();
        let mut s = engine.connect();
        s.execute("CREATE TABLE t (id INT)").unwrap();
        for i in 0..2000 {
            s.execute(&format!("INSERT INTO t VALUES ({i})")).unwrap();
        }
        s.execute("CREATE INDEX t_id ON t (id) USING btree")
            .unwrap();
        s.execute("ANALYZE t").unwrap();
        let q = "SELECT count(*) FROM t WHERE id = 7";
        let r1 = s.execute(q).unwrap();
        assert!(r1.explain.unwrap().contains("Index Scan"));
        // Same SQL, different vars → different key → different plan.
        s.execute("SET enable_indexscan = 0").unwrap();
        let r2 = s.execute(q).unwrap();
        assert!(r2.explain.unwrap().contains("Seq Scan"));
        // Flipping back re-uses the still-cached first entry.
        s.execute("SET enable_indexscan = 1").unwrap();
        let r3 = s.execute(q).unwrap();
        assert!(r3.explain.unwrap().contains("Index Scan"));
        assert_eq!(r3.rows[0][0].as_int(), Some(1));
    }

    #[test]
    fn analyze_invalidates_cached_plans() {
        let engine = Engine::in_memory();
        let mut s = engine.connect();
        s.execute("CREATE TABLE t (id INT)").unwrap();
        s.execute("INSERT INTO t VALUES (1)").unwrap();
        s.execute("SELECT count(*) FROM t").unwrap();
        assert_eq!(engine.cached_plan_count(), 1);
        s.execute("ANALYZE t").unwrap();
        assert_eq!(engine.cached_plan_count(), 0);
    }

    #[test]
    fn bare_analyze_refreshes_all_tables_and_flushes_plans() {
        let engine = Engine::in_memory();
        let mut s = engine.connect();
        s.execute("CREATE TABLE a (id INT)").unwrap();
        s.execute("CREATE TABLE b (id INT)").unwrap();
        for i in 0..5 {
            s.execute(&format!("INSERT INTO a VALUES ({i})")).unwrap();
            s.execute(&format!("INSERT INTO b VALUES ({i})")).unwrap();
        }
        s.execute("SELECT count(*) FROM a").unwrap();
        assert!(engine.cached_plan_count() > 0);
        s.execute("ANALYZE").unwrap();
        // Every user table's statistics reflect the current heap...
        let catalog = engine.catalog();
        for t in ["a", "b"] {
            let meta = catalog.table(t).unwrap();
            let stats = meta.stats.lock();
            assert_eq!(stats.rows, 5, "table {t} analyzed");
        }
        drop(catalog);
        // ...and the epoch bump flushed every cached plan.
        assert_eq!(engine.cached_plan_count(), 0);
    }

    #[test]
    fn plan_store_aggregates_across_sessions_by_digest() {
        let engine = Engine::in_memory();
        let mut s1 = engine.connect();
        s1.execute("CREATE TABLE t (id INT)").unwrap();
        for i in 0..8 {
            s1.execute(&format!("INSERT INTO t VALUES ({i})")).unwrap();
        }
        s1.execute("ANALYZE t").unwrap();
        let sql = "SELECT count(*) FROM t WHERE id >= 0";
        let digest = s1.execute(sql).unwrap().stats.plan_digest.unwrap();
        // A second session runs the same statement (via the plan cache)
        // plus an EXPLAIN ANALYZE of it: all three executions share one
        // plan shape, so they land on one entry.
        let mut s2 = engine.connect();
        s2.execute(sql).unwrap();
        s2.execute(&format!("EXPLAIN ANALYZE {sql}")).unwrap();
        let snap = obs::planstore::snapshot(Some(engine.engine_id));
        let entry = snap
            .iter()
            .find(|e| e.digest == digest)
            .expect("plan entry for the shared digest");
        assert_eq!(entry.calls, 3, "plain + cached + instrumented runs");
        assert_eq!(entry.last_actual_rows, 1);
        assert!(entry.qerror_last >= 1.0);
        assert!(entry.total >= entry.max);
        // The instrumented run filled in the per-node worst-case q-error.
        assert!(entry.node_qerror_max.is_some());
        // A different plan shape gets its own entry.
        s1.execute("SELECT count(*) FROM t WHERE id >= 1 AND id <= 3")
            .unwrap();
        let snap = obs::planstore::snapshot(Some(engine.engine_id));
        assert!(snap.iter().any(|e| e.digest != digest));
    }

    #[test]
    fn insert_visible_to_cached_plan() {
        // DML does not invalidate plans (the plan, not the data, is
        // cached) — a cached plan must still see fresh rows.
        let engine = Engine::in_memory();
        let mut s = engine.connect();
        s.execute("CREATE TABLE t (id INT)").unwrap();
        s.execute("INSERT INTO t VALUES (1)").unwrap();
        assert_eq!(
            s.query("SELECT count(*) FROM t").unwrap()[0][0].as_int(),
            Some(1)
        );
        s.execute("INSERT INTO t VALUES (2)").unwrap();
        assert_eq!(
            s.query("SELECT count(*) FROM t").unwrap()[0][0].as_int(),
            Some(2)
        );
    }

    #[test]
    fn max_rows_guard_trips_and_clears() {
        let engine = Engine::in_memory();
        let mut s = engine.connect();
        s.execute("CREATE TABLE t (id INT)").unwrap();
        for i in 0..10 {
            s.execute(&format!("INSERT INTO t VALUES ({i})")).unwrap();
        }
        s.execute("SET max_rows = 5").unwrap();
        let err = s.query("SELECT id FROM t").unwrap_err();
        assert!(matches!(err, Error::MaxRows { limit: 5 }), "{err}");
        // EXPLAIN ANALYZE executes the query for real, so it trips too.
        let err = s.execute("EXPLAIN ANALYZE SELECT id FROM t").unwrap_err();
        assert!(matches!(err, Error::MaxRows { limit: 5 }), "{err}");
        // Under the limit passes.
        assert_eq!(s.query("SELECT id FROM t LIMIT 5").unwrap().len(), 5);
        // 0 disables the guard.
        s.execute("SET max_rows = 0").unwrap();
        assert_eq!(s.query("SELECT id FROM t").unwrap().len(), 10);
    }

    #[test]
    fn script_errors_carry_ordinal_and_snippet() {
        let engine = Engine::in_memory();
        let mut s = engine.connect();
        let err = s
            .execute_script("CREATE TABLE t (id INT); INSERT INTO t VALUES (1); SELECT nope FROM t")
            .unwrap_err();
        match err {
            Error::Script {
                ordinal,
                ref snippet,
                ..
            } => {
                assert_eq!(ordinal, 3);
                assert!(snippet.contains("SELECT nope"), "{snippet}");
            }
            other => panic!("expected Error::Script, got {other}"),
        }
        assert!(err.to_string().contains("statement 3"), "{err}");
    }
}
