//! Table and column statistics: end-biased histograms (§3.4.1).
//!
//! PostgreSQL's "end-biased" histograms [Ioannidis '93] store the most
//! frequent values (MCVs) explicitly with their frequencies, and summarize
//! the rest with equi-depth bucket bounds.  The paper's ψ selectivity
//! estimator probes exactly these structures: "The ten most-frequent values
//! of the phonemic string attribute are stored, along with their
//! frequencies, explicitly in the histogram associated with that
//! attribute."

use crate::value::Datum;
use std::collections::HashMap;

/// Number of most-common values kept, per the paper ("the ten
/// most-frequent values").
pub const MCV_TARGET: usize = 10;

/// Number of equi-depth buckets for the non-MCV remainder.
const BUCKETS: usize = 20;

/// Statistics of one column.
#[derive(Debug, Clone, Default)]
pub struct ColumnStats {
    /// Non-null values seen by ANALYZE.
    pub n: u64,
    /// Fraction of NULLs.
    pub null_frac: f64,
    /// Estimated distinct values.
    pub n_distinct: f64,
    /// Most common values with their frequency *fractions* (of non-null).
    pub mcvs: Vec<(Datum, f64)>,
    /// Equi-depth bucket boundaries of the non-MCV remainder (ascending,
    /// BUCKETS+1 entries when populated).
    pub bounds: Vec<Datum>,
    /// Average value width in bytes (the `l` of Table 2).
    pub avg_width: f64,
}

impl ColumnStats {
    /// Build statistics from a full pass over the column's values.
    /// (Sampling would be a drop-in change; ANALYZE here is exact, which
    /// only makes the Figure 6 correlation experiment stricter.)
    pub fn build(values: &[Datum]) -> ColumnStats {
        let total = values.len() as f64;
        if values.is_empty() {
            return ColumnStats::default();
        }
        let mut nulls = 0u64;
        let mut freq: HashMap<Datum, u64> = HashMap::new();
        let mut width_sum = 0usize;
        for v in values {
            if v.is_null() {
                nulls += 1;
                continue;
            }
            width_sum += datum_width(v);
            *freq.entry(v.clone()).or_insert(0) += 1;
        }
        let non_null = values.len() as u64 - nulls;
        if non_null == 0 {
            return ColumnStats {
                n: 0,
                null_frac: 1.0,
                ..ColumnStats::default()
            };
        }
        let n_distinct = freq.len() as f64;

        // MCVs: top-10 by frequency; only values that occur more than once
        // earn a slot (matching PostgreSQL's behaviour on unique columns).
        let mut by_freq: Vec<(Datum, u64)> = freq.iter().map(|(d, &c)| (d.clone(), c)).collect();
        by_freq.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp_sql(&b.0)));
        let mcvs: Vec<(Datum, f64)> = by_freq
            .iter()
            .take(MCV_TARGET)
            .filter(|(_, c)| *c > 1 || n_distinct <= MCV_TARGET as f64)
            .map(|(d, c)| (d.clone(), *c as f64 / non_null as f64))
            .collect();

        // Equi-depth bounds over the remainder.
        let mcv_set: Vec<&Datum> = mcvs.iter().map(|(d, _)| d).collect();
        let mut rest: Vec<&Datum> = values
            .iter()
            .filter(|v| !v.is_null() && !mcv_set.iter().any(|m| m.eq_sql(v)))
            .collect();
        rest.sort_by(|a, b| a.cmp_sql(b));
        let mut bounds = Vec::new();
        if rest.len() >= 2 {
            for b in 0..=BUCKETS {
                let idx = (b * (rest.len() - 1)) / BUCKETS;
                bounds.push(rest[idx].clone());
            }
        }

        ColumnStats {
            n: non_null,
            null_frac: nulls as f64 / total,
            n_distinct,
            mcvs,
            bounds,
            avg_width: width_sum as f64 / non_null as f64,
        }
    }

    /// Selectivity of `col = constant` using MCVs then the uniform
    /// assumption over the histogram remainder.
    pub fn eq_selectivity(&self, constant: &Datum) -> f64 {
        if self.n == 0 {
            return 0.0;
        }
        for (v, f) in &self.mcvs {
            if v.eq_sql(constant) {
                return *f;
            }
        }
        let mcv_mass: f64 = self.mcvs.iter().map(|(_, f)| f).sum();
        let rest_distinct = (self.n_distinct - self.mcvs.len() as f64).max(1.0);
        ((1.0 - mcv_mass) / rest_distinct).clamp(0.0, 1.0)
    }

    /// Selectivity of `col < constant` (or `>` via complement) from the
    /// equi-depth bounds plus MCV mass below the constant.
    pub fn lt_selectivity(&self, constant: &Datum) -> f64 {
        if self.n == 0 {
            return 0.0;
        }
        let mcv_below: f64 = self
            .mcvs
            .iter()
            .filter(|(v, _)| v.cmp_sql(constant) == std::cmp::Ordering::Less)
            .map(|(_, f)| f)
            .sum();
        let mcv_mass: f64 = self.mcvs.iter().map(|(_, f)| f).sum();
        if self.bounds.len() < 2 {
            return (mcv_below + (1.0 - mcv_mass) * 0.5).clamp(0.0, 1.0);
        }
        let below = self
            .bounds
            .iter()
            .filter(|b| b.cmp_sql(constant) == std::cmp::Ordering::Less)
            .count();
        let frac = below as f64 / self.bounds.len() as f64;
        (mcv_below + (1.0 - mcv_mass) * frac).clamp(0.0, 1.0)
    }

    /// Equi-join selectivity against another column: PostgreSQL's
    /// `1 / max(nd_left, nd_right)`.
    pub fn join_selectivity(&self, other: &ColumnStats) -> f64 {
        let nd = self.n_distinct.max(other.n_distinct).max(1.0);
        1.0 / nd
    }
}

fn datum_width(d: &Datum) -> usize {
    match d {
        Datum::Null => 0,
        Datum::Bool(_) => 1,
        Datum::Int(_) | Datum::Float(_) => 8,
        Datum::Text(s) => s.len(),
        Datum::Ext { bytes, .. } => bytes.len(),
    }
}

/// Statistics of one table.
#[derive(Debug, Clone, Default)]
pub struct TableStats {
    /// Live tuple count at last ANALYZE (the `n` of Table 2).
    pub rows: u64,
    /// Heap pages at last ANALYZE (the `p` of Table 2).
    pub pages: u64,
    /// Per-column statistics (None = not analyzed / unsupported type).
    pub columns: Vec<Option<ColumnStats>>,
}

impl TableStats {
    /// Column stats accessor.
    pub fn column(&self, i: usize) -> Option<&ColumnStats> {
        self.columns.get(i).and_then(Option::as_ref)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ints(vals: &[i64]) -> Vec<Datum> {
        vals.iter().map(|&i| Datum::Int(i)).collect()
    }

    #[test]
    fn empty_column() {
        let s = ColumnStats::build(&[]);
        assert_eq!(s.n, 0);
        assert_eq!(s.eq_selectivity(&Datum::Int(1)), 0.0);
    }

    #[test]
    fn mcvs_capture_heavy_hitters() {
        // 50× value 7, 25× value 8, 100 distinct singletons.
        let mut vals = Vec::new();
        vals.extend(std::iter::repeat_n(7i64, 50));
        vals.extend(std::iter::repeat_n(8i64, 25));
        vals.extend(100..200);
        let s = ColumnStats::build(&ints(&vals));
        assert!(!s.mcvs.is_empty());
        assert!(s.mcvs[0].0.eq_sql(&Datum::Int(7)));
        let sel7 = s.eq_selectivity(&Datum::Int(7));
        assert!((sel7 - 50.0 / 175.0).abs() < 1e-9);
        // A singleton uses the uniform remainder estimate — much smaller.
        let sel150 = s.eq_selectivity(&Datum::Int(150));
        assert!(sel150 < sel7 / 5.0);
    }

    #[test]
    fn at_most_ten_mcvs() {
        let mut vals = Vec::new();
        for v in 0..30i64 {
            vals.extend(std::iter::repeat_n(v, 2 + v as usize));
        }
        let s = ColumnStats::build(&ints(&vals));
        assert_eq!(s.mcvs.len(), MCV_TARGET);
        // Highest-frequency value is 29.
        assert!(s.mcvs[0].0.eq_sql(&Datum::Int(29)));
    }

    #[test]
    fn null_fraction() {
        let mut vals = ints(&[1, 2, 3]);
        vals.push(Datum::Null);
        let s = ColumnStats::build(&vals);
        assert!((s.null_frac - 0.25).abs() < 1e-9);
        assert_eq!(s.n, 3);
    }

    #[test]
    fn lt_selectivity_tracks_distribution() {
        let vals: Vec<i64> = (0..1000).collect();
        let s = ColumnStats::build(&ints(&vals));
        let sel = s.lt_selectivity(&Datum::Int(250));
        assert!((sel - 0.25).abs() < 0.08, "got {sel}");
        assert!(s.lt_selectivity(&Datum::Int(-5)) < 0.05);
        assert!(s.lt_selectivity(&Datum::Int(5000)) > 0.95);
    }

    #[test]
    fn join_selectivity_uses_larger_ndistinct() {
        let a = ColumnStats::build(&ints(&(0..100).collect::<Vec<_>>()));
        let b = ColumnStats::build(&ints(&(0..10).collect::<Vec<_>>()));
        assert!((a.join_selectivity(&b) - 0.01).abs() < 1e-9);
    }

    #[test]
    fn unique_column_has_no_mcvs() {
        let s = ColumnStats::build(&ints(&(0..500).collect::<Vec<_>>()));
        assert!(s.mcvs.is_empty(), "unique values should not become MCVs");
        assert_eq!(s.bounds.len(), 21);
    }

    #[test]
    fn avg_width_of_text() {
        let vals = vec![Datum::text("ab"), Datum::text("abcd")];
        let s = ColumnStats::build(&vals);
        assert!((s.avg_width - 3.0).abs() < 1e-9);
    }
}
