//! Extension registries: types, operators, scalar functions, session vars.

use crate::catalog::stats::ColumnStats;
use crate::error::Result;
use crate::value::{DataType, Datum, ExtTypeId};
use std::collections::HashMap;
use std::sync::Arc;

/// Session-settable variables (`SET name = value`).
///
/// The paper implements ψ as a *binary* operator because PostgreSQL's
/// operator extension facility only supports binary operators, routing the
/// third input — the error threshold — through "a user-settable value in a
/// system table" (§4.2).  We reproduce that mechanism: operator evaluation
/// receives the session variables and reads its threshold from there.
#[derive(Debug, Clone, Default)]
pub struct SessionVars {
    vars: HashMap<String, Datum>,
}

impl SessionVars {
    /// Empty variable set.
    pub fn new() -> Self {
        SessionVars::default()
    }

    /// Set a variable (name is lower-cased).
    pub fn set(&mut self, name: &str, value: Datum) {
        self.vars.insert(name.to_lowercase(), value);
    }

    /// Get a variable.
    pub fn get(&self, name: &str) -> Option<&Datum> {
        self.vars.get(&name.to_lowercase())
    }

    /// Get an integer variable with a default.
    pub fn get_int(&self, name: &str, default: i64) -> i64 {
        self.get(name).and_then(Datum::as_int).unwrap_or(default)
    }

    /// Iterate all (name, value) pairs (for SHOW).
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Datum)> {
        self.vars.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Order-independent digest of all variables.
    ///
    /// Part of the plan-cache key: session variables steer the optimizer
    /// (`enable_*` flags, operator thresholds like `lexequal.threshold`),
    /// so two sessions with different settings must not share cached
    /// plans.  XOR-combining per-entry hashes makes iteration order (and
    /// thus `HashMap` internals) irrelevant.
    pub fn fingerprint(&self) -> u64 {
        use std::hash::{Hash, Hasher};
        let mut acc = 0u64;
        for (k, v) in &self.vars {
            let mut h = std::collections::hash_map::DefaultHasher::new();
            k.hash(&mut h);
            v.hash(&mut h);
            acc ^= h.finish();
        }
        acc
    }
}

/// Support functions of an extension type (PostgreSQL: `CREATE TYPE`).
#[derive(Clone)]
#[allow(clippy::type_complexity)]
pub struct ExtTypeDef {
    /// Type name (lower-cased on registration).
    pub name: String,
    /// Render a value for output.
    pub display: Arc<dyn Fn(&[u8]) -> String + Send + Sync>,
    /// Total order used by sorts and B-Tree indexes.
    pub compare: Arc<dyn Fn(&[u8], &[u8]) -> std::cmp::Ordering + Send + Sync>,
    /// Insertion-time transform (e.g. UniText phoneme materialization,
    /// §4.2 "materialized to avoid repeated conversions").  Applied by the
    /// DML path to every stored value of this type.
    pub on_insert: Option<Arc<dyn Fn(&[u8]) -> Vec<u8> + Send + Sync>>,
    /// Comparison against a plain text value (`unitext_col = 'literal'`);
    /// `None` forbids mixed comparisons (the binder rejects them).
    #[allow(clippy::type_complexity)]
    pub compare_text: Option<Arc<dyn Fn(&[u8], &str) -> std::cmp::Ordering + Send + Sync>>,
}

impl std::fmt::Debug for ExtTypeDef {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ExtTypeDef")
            .field("name", &self.name)
            .finish()
    }
}

#[derive(Default)]
pub(crate) struct TypeRegistry {
    defs: Vec<ExtTypeDef>,
    by_name: HashMap<String, ExtTypeId>,
}

impl TypeRegistry {
    pub(crate) fn new() -> Self {
        TypeRegistry::default()
    }

    pub(crate) fn register(&mut self, mut def: ExtTypeDef) -> ExtTypeId {
        def.name = def.name.to_lowercase();
        if let Some(&id) = self.by_name.get(&def.name) {
            self.defs[id.0 as usize] = def;
            return id;
        }
        let id = ExtTypeId(self.defs.len() as u32);
        self.by_name.insert(def.name.clone(), id);
        self.defs.push(def);
        id
    }

    pub(crate) fn by_name(&self, name: &str) -> Option<(ExtTypeId, &ExtTypeDef)> {
        let id = *self.by_name.get(&name.to_lowercase())?;
        Some((id, &self.defs[id.0 as usize]))
    }

    pub(crate) fn by_id(&self, id: ExtTypeId) -> Option<&ExtTypeDef> {
        self.defs.get(id.0 as usize)
    }
}

/// How an operator composes (the paper's Table 1): drives optimizer
/// rewrites such as operand swapping and pushdown through unions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OperatorKind {
    /// `a OP b ≡ b OP a` (ψ commutes; Ω does not).
    pub commutative: bool,
    /// OP distributes over set union (both ψ and Ω do), legitimizing
    /// predicate pushdown below unions and joins.
    pub distributes_over_union: bool,
}

/// Everything the optimizer needs to know about one predicate's selectivity.
pub struct SelectivityInput<'a> {
    /// Statistics of the column on the probe side (if analyzed).
    pub column: Option<&'a ColumnStats>,
    /// The constant being probed (scan-type predicates); `None` for joins.
    pub constant: Option<&'a Datum>,
    /// Statistics of the other join side (join-type predicates).
    pub other_column: Option<&'a ColumnStats>,
    /// Session variables (thresholds).
    pub session: &'a SessionVars,
}

/// An extension operator: evaluation, typing, costing, selectivity, and
/// index pairing.  This is the unit of the paper's "first-class operator"
/// integration: registering one of these gives the operator the same
/// treatment `=` gets — evaluation in the executor, costing and cardinality
/// estimation in the optimizer, and index acceleration in the access layer.
#[derive(Clone)]
pub struct ExtOperator {
    /// Operator name as written in SQL (lower-cased on registration).
    pub name: String,
    /// Left/right operand types it applies to (checked by the binder).
    pub operand_type: DataType,
    /// Evaluate `left OP right` under the session variables.
    #[allow(clippy::type_complexity)]
    pub eval: Arc<dyn Fn(&Datum, &Datum, &SessionVars) -> Result<Datum> + Send + Sync>,
    /// Vectorized evaluation of `lefts[i] OP right` for a whole batch of
    /// left operands against one constant right operand, returning one
    /// verdict per input in order.  The batch executor uses this to hoist
    /// per-pair setup (phoneme conversion of the constant, closure-cache
    /// probes, DP buffer borrows) out of the inner loop; `None` means the
    /// operator only supports scalar evaluation and the executor falls
    /// back to calling `eval` per row.  Implementations must be
    /// result-identical to `eval` on every element.
    #[allow(clippy::type_complexity)]
    pub eval_batch:
        Option<Arc<dyn Fn(&[&Datum], &Datum, &SessionVars) -> Result<Vec<Datum>> + Send + Sync>>,
    /// Algebraic properties (Table 1).
    pub kind: OperatorKind,
    /// CPU cost per evaluated pair, in units of `cpu_operator_cost` — ψ's
    /// banded edit distance costs k·l of these (Table 3).
    #[allow(clippy::type_complexity)]
    pub per_tuple_cost: Arc<dyn Fn(&SessionVars, f64) -> f64 + Send + Sync>,
    /// Selectivity estimator (§3.4).
    #[allow(clippy::type_complexity)]
    pub selectivity: Arc<dyn Fn(&SelectivityInput<'_>) -> f64 + Send + Sync>,
    /// `(access_method, strategy)` that can serve `col OP const` probes —
    /// e.g. `("mtree", "within")` for ψ.
    pub index_strategy: Option<(String, String)>,
    /// Extra Datum passed to the index strategy (e.g. the threshold),
    /// computed from session vars at plan time.
    #[allow(clippy::type_complexity)]
    pub index_extra: Option<Arc<dyn Fn(&SessionVars) -> Datum + Send + Sync>>,
    /// Filter applied to the LEFT operand for the operator's `IN (...)`
    /// modifier list (ψ/Ω's output-language restriction).  `None` means the
    /// operator takes no modifiers.
    #[allow(clippy::type_complexity)]
    pub modifier_filter: Option<Arc<dyn Fn(&Datum, &[String]) -> bool + Send + Sync>>,
    /// Fraction of an *approximate* index expected to be traversed by one
    /// probe, as a function of the session threshold.  The paper models
    /// this "by a linear function on the error threshold" (§3.3); `None`
    /// falls back to the estimated selectivity.
    #[allow(clippy::type_complexity)]
    pub index_scan_fraction: Option<Arc<dyn Fn(&SessionVars) -> f64 + Send + Sync>>,
    /// Optional EXPLAIN annotation: names the evaluation strategy the
    /// operator will use under this session's settings (e.g. Ω's
    /// `intervals` vs `closure-fallback` containment).  The planner
    /// stamps it onto scan nodes whose pushed-down filter contains the
    /// operator, so EXPLAIN / EXPLAIN ANALYZE surface the strategy.
    #[allow(clippy::type_complexity)]
    pub strategy_label: Option<Arc<dyn Fn(&SessionVars) -> String + Send + Sync>>,
}

impl std::fmt::Debug for ExtOperator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ExtOperator")
            .field("name", &self.name)
            .field("kind", &self.kind)
            .finish()
    }
}

#[derive(Default)]
pub(crate) struct OperatorRegistry {
    ops: HashMap<String, ExtOperator>,
}

impl OperatorRegistry {
    pub(crate) fn new() -> Self {
        OperatorRegistry::default()
    }

    pub(crate) fn register(&mut self, mut op: ExtOperator) {
        op.name = op.name.to_lowercase();
        self.ops.insert(op.name.clone(), op);
    }

    pub(crate) fn get(&self, name: &str) -> Option<&ExtOperator> {
        self.ops.get(&name.to_lowercase())
    }

    pub(crate) fn names(&self) -> Vec<&str> {
        self.ops.keys().map(String::as_str).collect()
    }
}

/// A scalar function (constructor or helper callable from SQL and PL).
#[derive(Clone)]
pub struct FuncDef {
    /// Function name (lower-cased on registration).
    pub name: String,
    /// Number of arguments (fixed arity).
    pub arity: usize,
    /// Result type (`None` = depends on inputs, binder infers Text).
    pub ret: Option<DataType>,
    /// Implementation.
    #[allow(clippy::type_complexity)]
    pub eval: Arc<dyn Fn(&[Datum], &SessionVars) -> Result<Datum> + Send + Sync>,
}

impl std::fmt::Debug for FuncDef {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FuncDef")
            .field("name", &self.name)
            .field("arity", &self.arity)
            .finish()
    }
}

#[derive(Default)]
pub(crate) struct FunctionRegistry {
    funcs: HashMap<String, FuncDef>,
}

impl FunctionRegistry {
    pub(crate) fn new() -> Self {
        FunctionRegistry::default()
    }

    pub(crate) fn register(&mut self, mut f: FuncDef) {
        f.name = f.name.to_lowercase();
        self.funcs.insert(f.name.clone(), f);
    }

    pub(crate) fn get(&self, name: &str) -> Option<&FuncDef> {
        self.funcs.get(&name.to_lowercase())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn session_vars_roundtrip() {
        let mut s = SessionVars::new();
        s.set("LexEqual.Threshold", Datum::Int(3));
        assert_eq!(s.get_int("lexequal.threshold", 0), 3);
        assert_eq!(s.get_int("missing", 7), 7);
        assert_eq!(s.iter().count(), 1);
    }

    #[test]
    fn type_registry_idempotent_by_name() {
        let mut r = TypeRegistry::new();
        let def = ExtTypeDef {
            name: "UniText".into(),
            display: Arc::new(|_| "x".into()),
            compare: Arc::new(|a, b| a.cmp(b)),
            on_insert: None,
            compare_text: None,
        };
        let id1 = r.register(def.clone());
        let id2 = r.register(def);
        assert_eq!(id1, id2);
        assert!(r.by_name("unitext").is_some());
        assert!(r.by_id(id1).is_some());
    }

    #[test]
    fn operator_registry_case_insensitive() {
        let mut r = OperatorRegistry::new();
        r.register(ExtOperator {
            name: "LexEQUAL".into(),
            operand_type: DataType::Text,
            eval: Arc::new(|_, _, _| Ok(Datum::Bool(true))),
            eval_batch: None,
            kind: OperatorKind {
                commutative: true,
                distributes_over_union: true,
            },
            per_tuple_cost: Arc::new(|_, _| 1.0),
            selectivity: Arc::new(|_| 0.1),
            index_strategy: None,
            index_extra: None,
            modifier_filter: None,
            index_scan_fraction: None,
            strategy_label: None,
        });
        assert!(r.get("lexequal").is_some());
        assert!(r.get("LEXEQUAL").is_some());
        assert_eq!(r.names(), vec!["lexequal"]);
    }

    #[test]
    fn function_eval_dispatch() {
        let mut r = FunctionRegistry::new();
        r.register(FuncDef {
            name: "double".into(),
            arity: 1,
            ret: Some(DataType::Int),
            eval: Arc::new(|args, _| Ok(Datum::Int(args[0].as_int().unwrap_or(0) * 2))),
        });
        let f = r.get("double").unwrap();
        let out = (f.eval)(&[Datum::Int(21)], &SessionVars::new()).unwrap();
        assert!(out.eq_sql(&Datum::Int(42)));
    }
}
