//! System catalog: tables, extension types, operators, functions, access
//! methods, and per-column statistics.
//!
//! Extensibility mirrors PostgreSQL's object-relational catalog, which is
//! why the paper chose PostgreSQL ("featuring strong support for extensible
//! datatypes, functions, operators, and index methods", §4.1).  Everything
//! `mlql-mural` adds — the UniText type, the ψ/Ω operators with their cost
//! models and selectivity estimators, the M-Tree access method — goes
//! through the registration APIs here, never through kernel changes.

mod registry;
mod stats;

pub use registry::{ExtOperator, ExtTypeDef, FuncDef, OperatorKind, SelectivityInput, SessionVars};
pub use stats::{ColumnStats, TableStats, MCV_TARGET};

use crate::error::{Error, Result};
use crate::index::{AccessMethod, BTreeAm, IndexInstance};
use crate::schema::Schema;
use crate::storage::HeapFile;
use crate::value::ExtTypeId;
use parking_lot::{Mutex, RwLock};
use std::collections::HashMap;
use std::sync::Arc;

/// Identifier of a table in the catalog.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TableId(pub u32);

/// Metadata of one index.
pub struct IndexMeta {
    /// Index name (unique per catalog).
    pub name: String,
    /// Table the index belongs to.
    pub table: TableId,
    /// Indexed column (position in the table schema).
    pub column: usize,
    /// Access-method name (`"btree"`, `"mtree"`, ...).
    pub am: String,
    /// The live index structure.  RwLock: searches (`&self`) from
    /// concurrent sessions share a read guard; DML maintenance
    /// (`&mut self` insert/delete) takes the write guard.
    pub instance: RwLock<Box<dyn IndexInstance>>,
}

/// Metadata of one table.
pub struct TableMeta {
    /// Table id.
    pub id: TableId,
    /// Lower-cased name.
    pub name: String,
    /// Column layout.
    pub schema: Schema,
    /// Backing heap file.
    pub heap: HeapFile,
    /// Statistics from the last ANALYZE.
    pub stats: Mutex<TableStats>,
}

/// The system catalog.
pub struct Catalog {
    tables: Vec<Arc<TableMeta>>,
    by_name: HashMap<String, TableId>,
    indexes: Vec<Arc<IndexMeta>>,
    types: registry::TypeRegistry,
    operators: registry::OperatorRegistry,
    functions: registry::FunctionRegistry,
    access_methods: HashMap<String, Arc<dyn AccessMethod>>,
}

impl Default for Catalog {
    fn default() -> Self {
        Self::new()
    }
}

impl Catalog {
    /// A catalog with the built-in access methods and functions registered.
    pub fn new() -> Self {
        let mut access_methods: HashMap<String, Arc<dyn AccessMethod>> = HashMap::new();
        access_methods.insert("btree".into(), Arc::new(BTreeAm));
        let mut catalog = Catalog {
            tables: Vec::new(),
            by_name: HashMap::new(),
            indexes: Vec::new(),
            types: registry::TypeRegistry::new(),
            operators: registry::OperatorRegistry::new(),
            functions: registry::FunctionRegistry::new(),
            access_methods,
        };
        // Built-in observability functions: engine metrics as JSON /
        // Prometheus text (`SELECT mlql_stats()`); the SQL analogue of
        // pg_stat_* views without needing system tables.
        catalog.register_function(FuncDef {
            name: "mlql_stats".into(),
            arity: 0,
            ret: Some(crate::value::DataType::Text),
            eval: Arc::new(|_, _| {
                let _ = crate::obs::metrics();
                Ok(crate::value::Datum::text(
                    crate::obs::global().render_json(),
                ))
            }),
        });
        catalog.register_function(FuncDef {
            name: "mlql_stats_prometheus".into(),
            arity: 0,
            ret: Some(crate::value::DataType::Text),
            eval: Arc::new(|_, _| {
                let _ = crate::obs::metrics();
                Ok(crate::value::Datum::text(
                    crate::obs::global().render_prometheus(),
                ))
            }),
        });
        // Live activity across every session in the process, as a JSON
        // array (the function analogue of `SHOW ACTIVITY`, which filters
        // to the issuing engine).
        catalog.register_function(FuncDef {
            name: "mlql_activity".into(),
            arity: 0,
            ret: Some(crate::value::DataType::Text),
            eval: Arc::new(|_, _| {
                Ok(crate::value::Datum::text(
                    crate::obs::activity::render_json(),
                ))
            }),
        });
        // The completed-query flight recorder, as a JSON array.
        catalog.register_function(FuncDef {
            name: "mlql_flight_recorder".into(),
            arity: 0,
            ret: Some(crate::value::DataType::Text),
            eval: Arc::new(|_, _| Ok(crate::value::Datum::text(crate::obs::flight::render_json()))),
        });
        // Per-plan-digest estimate-vs-actual aggregates plus the fitted
        // cost calibration, across every engine in the process (the
        // function analogue of `SHOW PLAN STATS`, which filters to the
        // issuing engine).
        catalog.register_function(FuncDef {
            name: "mlql_plan_stats".into(),
            arity: 0,
            ret: Some(crate::value::DataType::Text),
            eval: Arc::new(|_, _| {
                Ok(crate::value::Datum::text(
                    crate::obs::planstore::render_json(None),
                ))
            }),
        });
        // Stale-statistics advisories across every engine, as a JSON array.
        catalog.register_function(FuncDef {
            name: "mlql_advisories".into(),
            arity: 0,
            ret: Some(crate::value::DataType::Text),
            eval: Arc::new(|_, _| {
                Ok(crate::value::Datum::text(
                    crate::obs::planstore::render_advisories_json(None),
                ))
            }),
        });
        catalog
    }

    // ---------------- tables ----------------

    /// Create a table; errors on duplicate names.
    pub fn create_table(&mut self, name: &str, schema: Schema, heap: HeapFile) -> Result<TableId> {
        let lower = name.to_lowercase();
        if self.by_name.contains_key(&lower) {
            return Err(Error::Catalog(format!("table {lower:?} already exists")));
        }
        let id = TableId(self.tables.len() as u32);
        self.tables.push(Arc::new(TableMeta {
            id,
            name: lower.clone(),
            schema,
            heap,
            stats: Mutex::new(TableStats::default()),
        }));
        self.by_name.insert(lower, id);
        Ok(id)
    }

    /// Drop a table by name.  The heap file remains in the storage layer
    /// (space reclamation is out of scope); its indexes are dropped.
    pub fn drop_table(&mut self, name: &str) -> Result<()> {
        let lower = name.to_lowercase();
        let id = self
            .by_name
            .remove(&lower)
            .ok_or_else(|| Error::Catalog(format!("no table {lower:?}")))?;
        self.indexes.retain(|i| i.table != id);
        Ok(())
    }

    /// Look a table up by name.
    pub fn table(&self, name: &str) -> Result<Arc<TableMeta>> {
        let lower = name.to_lowercase();
        self.by_name
            .get(&lower)
            .map(|&id| Arc::clone(&self.tables[id.0 as usize]))
            .ok_or_else(|| Error::Catalog(format!("no table {lower:?}")))
    }

    /// Look a table up by id.
    pub fn table_by_id(&self, id: TableId) -> Result<Arc<TableMeta>> {
        self.tables
            .get(id.0 as usize)
            .cloned()
            .ok_or_else(|| Error::Catalog(format!("no table id {id:?}")))
    }

    /// All live tables.
    pub fn tables(&self) -> impl Iterator<Item = &Arc<TableMeta>> {
        self.by_name.values().map(|&id| &self.tables[id.0 as usize])
    }

    /// Whether a table name is live (cheap existence probe).
    pub fn has_table(&self, name: &str) -> bool {
        self.by_name.contains_key(&name.to_lowercase())
    }

    /// Every table slot in id order, including dropped ones.  Checkpoint
    /// snapshots persist dead slots too, because table ids are vec
    /// positions: replaying a post-snapshot `CREATE TABLE` must assign the
    /// same id it originally got, which requires the dropped slots to keep
    /// occupying their positions.
    pub fn table_slots(&self) -> &[Arc<TableMeta>] {
        &self.tables
    }

    /// Whether a slot is live (dropped tables stay in `table_slots` but
    /// leave the name map).
    pub fn is_live(&self, id: TableId) -> bool {
        self.tables
            .get(id.0 as usize)
            .is_some_and(|t| self.by_name.get(&t.name) == Some(&id))
    }

    /// Re-create a table slot from a checkpoint snapshot.  Slots must be
    /// restored in id order; `live` distinguishes dropped tables (which
    /// occupy their slot but are not name-resolvable).
    pub fn restore_table(
        &mut self,
        name: &str,
        schema: Schema,
        heap: HeapFile,
        live: bool,
    ) -> Result<TableId> {
        let lower = name.to_lowercase();
        if live && self.by_name.contains_key(&lower) {
            return Err(Error::Catalog(format!(
                "snapshot restore: table {lower:?} already exists"
            )));
        }
        let id = TableId(self.tables.len() as u32);
        self.tables.push(Arc::new(TableMeta {
            id,
            name: lower.clone(),
            schema,
            heap,
            stats: Mutex::new(TableStats::default()),
        }));
        if live {
            self.by_name.insert(lower, id);
        }
        Ok(id)
    }

    /// Create an (empty) index on a table; the DDL executor back-fills it.
    pub fn create_index(
        &mut self,
        table: &str,
        index_name: &str,
        column: usize,
        am_name: &str,
    ) -> Result<Arc<IndexMeta>> {
        let am = self
            .access_methods
            .get(am_name)
            .ok_or_else(|| Error::Catalog(format!("no access method {am_name:?}")))?;
        let meta = self.table(table)?;
        if self.indexes.iter().any(|i| i.name == index_name) {
            return Err(Error::Catalog(format!(
                "index {index_name:?} already exists"
            )));
        }
        if column >= meta.schema.len() {
            return Err(Error::Catalog(format!("column {column} out of range")));
        }
        let idx = Arc::new(IndexMeta {
            name: index_name.to_string(),
            table: meta.id,
            column,
            am: am_name.to_string(),
            instance: RwLock::new(am.create()?),
        });
        self.indexes.push(Arc::clone(&idx));
        Ok(idx)
    }

    /// Drop an index by name.
    pub fn drop_index(&mut self, index_name: &str) -> Result<()> {
        let before = self.indexes.len();
        self.indexes.retain(|i| i.name != index_name);
        if self.indexes.len() == before {
            return Err(Error::Catalog(format!("no index {index_name:?}")));
        }
        Ok(())
    }

    /// Indexes of a table.
    pub fn indexes_of(&self, table: TableId) -> Vec<Arc<IndexMeta>> {
        self.indexes
            .iter()
            .filter(|i| i.table == table)
            .cloned()
            .collect()
    }

    /// All indexes (recovery rebuild walks this).
    pub fn all_indexes(&self) -> &[Arc<IndexMeta>] {
        &self.indexes
    }

    // ---------------- registries ----------------

    /// Register an extension type; returns its id.
    pub fn register_type(&mut self, def: ExtTypeDef) -> ExtTypeId {
        self.types.register(def)
    }

    /// Look up an extension type by name.
    pub fn type_by_name(&self, name: &str) -> Option<(ExtTypeId, &ExtTypeDef)> {
        self.types.by_name(name)
    }

    /// Look up an extension type by id.
    pub fn type_by_id(&self, id: ExtTypeId) -> Option<&ExtTypeDef> {
        self.types.by_id(id)
    }

    /// Register an extension operator (e.g. LexEQUAL).
    pub fn register_operator(&mut self, op: ExtOperator) {
        self.operators.register(op);
    }

    /// Look up an operator by name (case-insensitive).
    pub fn operator(&self, name: &str) -> Option<&ExtOperator> {
        self.operators.get(name)
    }

    /// Names of all registered extension operators.
    pub fn operator_names(&self) -> Vec<&str> {
        self.operators.names()
    }

    /// Register a scalar function (e.g. `unitext(text, text)`).
    pub fn register_function(&mut self, f: FuncDef) {
        self.functions.register(f);
    }

    /// Look up a scalar function.
    pub fn function(&self, name: &str) -> Option<&FuncDef> {
        self.functions.get(name)
    }

    /// Register an access method (the GiST-equivalent hook).
    pub fn register_access_method(&mut self, am: Arc<dyn AccessMethod>) {
        self.access_methods.insert(am.name().to_string(), am);
    }

    /// Look up an access method.
    pub fn access_method(&self, name: &str) -> Option<&Arc<dyn AccessMethod>> {
        self.access_methods.get(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Column;
    use crate::storage::{BufferPool, MemBackend};
    use crate::value::DataType;

    fn pool() -> BufferPool {
        BufferPool::new(Box::new(MemBackend::new()), 16)
    }

    fn schema() -> Schema {
        Schema::new(vec![
            Column::new("id", DataType::Int),
            Column::new("name", DataType::Text),
        ])
    }

    #[test]
    fn create_and_lookup_table() {
        let pool = pool();
        let mut cat = Catalog::new();
        let heap = HeapFile::create(&pool).unwrap();
        let id = cat.create_table("Book", schema(), heap).unwrap();
        let meta = cat.table("book").unwrap();
        assert_eq!(meta.id, id);
        assert_eq!(meta.schema.len(), 2);
        assert!(
            cat.create_table("BOOK", schema(), heap).is_err(),
            "duplicate"
        );
        assert!(cat.table("missing").is_err());
    }

    #[test]
    fn drop_table_removes_name_and_indexes() {
        let pool = pool();
        let mut cat = Catalog::new();
        let heap = HeapFile::create(&pool).unwrap();
        let id = cat.create_table("t", schema(), heap).unwrap();
        cat.create_index("t", "t_id", 0, "btree").unwrap();
        cat.drop_table("t").unwrap();
        assert!(cat.table("t").is_err());
        assert!(cat.indexes_of(id).is_empty());
        assert!(cat.drop_table("t").is_err());
    }

    #[test]
    fn create_index_validates() {
        let pool = pool();
        let mut cat = Catalog::new();
        let heap = HeapFile::create(&pool).unwrap();
        let id = cat.create_table("t", schema(), heap).unwrap();
        cat.create_index("t", "t_id_idx", 0, "btree").unwrap();
        assert_eq!(cat.indexes_of(id).len(), 1);
        assert!(
            cat.create_index("t", "t_id_idx", 0, "btree").is_err(),
            "dup index"
        );
        assert!(
            cat.create_index("t", "x", 9, "btree").is_err(),
            "bad column"
        );
        assert!(cat.create_index("t", "y", 0, "hash").is_err(), "unknown am");
    }

    #[test]
    fn drop_index_by_name() {
        let pool = pool();
        let mut cat = Catalog::new();
        let heap = HeapFile::create(&pool).unwrap();
        let id = cat.create_table("t", schema(), heap).unwrap();
        cat.create_index("t", "i1", 0, "btree").unwrap();
        cat.drop_index("i1").unwrap();
        assert!(cat.indexes_of(id).is_empty());
        assert!(cat.drop_index("i1").is_err());
    }

    #[test]
    fn builtin_btree_am_registered() {
        let cat = Catalog::new();
        let am = cat.access_method("btree").unwrap();
        assert_eq!(am.name(), "btree");
        assert!(am.strategies().contains(&"eq"));
    }
}
