//! Shared-reference read concurrency: the engine's internal locking
//! (buffer-pool mutex, per-index mutexes) must let many threads run
//! SELECTs against one `Database` simultaneously with consistent results.

use mlql_kernel::Database;

#[test]
fn parallel_selects_are_consistent() {
    let mut db = Database::new_in_memory();
    db.execute("CREATE TABLE t (id INT, grp INT)").unwrap();
    for i in 0..5000 {
        db.execute(&format!("INSERT INTO t VALUES ({i}, {})", i % 7))
            .unwrap();
    }
    db.execute("CREATE INDEX t_id ON t (id) USING btree")
        .unwrap();
    db.execute("ANALYZE t").unwrap();
    let db = &db;

    crossbeam::scope(|scope| {
        let mut handles = Vec::new();
        for w in 0..8 {
            handles.push(scope.spawn(move |_| {
                for round in 0..20 {
                    let probe = (w * 131 + round * 17) % 5000;
                    let point = db
                        .query_ref(&format!("SELECT grp FROM t WHERE id = {probe}"))
                        .unwrap();
                    assert_eq!(point.len(), 1);
                    assert_eq!(point[0][0].as_int(), Some((probe % 7) as i64));
                    let agg = db
                        .query_ref("SELECT count(*) FROM t WHERE grp = 3")
                        .unwrap();
                    assert_eq!(agg[0][0].as_int(), Some(714));
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
    })
    .unwrap();
}

/// The metrics registry is updated from every engine thread: hammer one
/// counter, one gauge, and one histogram from many threads — with
/// concurrent renders mixed in — and check the totals are exact (no lost
/// updates) and the expositions stay well-formed throughout.
#[test]
fn metrics_registry_survives_concurrent_hammering() {
    use mlql_kernel::obs;

    let reg = obs::global();
    // Unique names: the registry is process-global and shared with every
    // other test in this binary.
    let counter = reg.counter("test_hammer_counter", "hammer test counter");
    let gauge = reg.gauge("test_hammer_gauge", "hammer test gauge");
    let histo = reg.histogram(
        "test_hammer_histogram",
        "hammer test histogram",
        &[1.0, 10.0, 100.0],
    );
    let base = counter.get();

    const THREADS: u64 = 8;
    const ROUNDS: u64 = 10_000;
    crossbeam::scope(|scope| {
        for w in 0..THREADS {
            let counter = &counter;
            let gauge = &gauge;
            let histo = &histo;
            scope.spawn(move |_| {
                for i in 0..ROUNDS {
                    counter.inc();
                    gauge.set(w as f64);
                    histo.observe((i % 200) as f64);
                    if i % 1024 == 0 {
                        // Renders interleave with the writes.
                        let prom = obs::global().render_prometheus();
                        assert!(prom.contains("test_hammer_counter"));
                        let json = obs::global().render_json();
                        assert!(json.starts_with('{') && json.ends_with('}'));
                    }
                }
            });
        }
    })
    .unwrap();

    assert_eq!(
        counter.get(),
        base + THREADS * ROUNDS,
        "no lost counter updates"
    );
    assert_eq!(histo.count(), THREADS * ROUNDS, "no lost observations");
    // Bucket counts are exact: per thread, values 0..200 cycle — 2 of
    // every 200 land ≤1, 11 ≤10, 101 ≤100.
    let buckets = histo.cumulative_buckets();
    let per_thread = ROUNDS / 200;
    assert_eq!(buckets[0].1, THREADS * per_thread * 2);
    assert_eq!(buckets[1].1, THREADS * per_thread * 11);
    assert_eq!(buckets[2].1, THREADS * per_thread * 101);
    assert_eq!(buckets[3].1, THREADS * ROUNDS);
    // The gauge holds the last write of *some* thread.
    let g = gauge.get();
    assert!((0.0..THREADS as f64).contains(&g), "gauge {g}");
    // Re-registration under the same name returns the same handle.
    let again = reg.counter("test_hammer_counter", "hammer test counter");
    assert_eq!(again.get(), counter.get());
}

/// Engine counters accumulate correctly when many threads run queries.
#[test]
fn query_metrics_accumulate_across_threads() {
    use mlql_kernel::obs;

    let mut db = Database::new_in_memory();
    db.execute("CREATE TABLE t (id INT)").unwrap();
    for i in 0..100 {
        db.execute(&format!("INSERT INTO t VALUES ({i})")).unwrap();
    }
    let before = obs::metrics().queries_total.get();
    let db = &db;
    const THREADS: u64 = 4;
    const QUERIES: u64 = 50;
    crossbeam::scope(|scope| {
        for _ in 0..THREADS {
            scope.spawn(move |_| {
                for _ in 0..QUERIES {
                    db.query_ref("SELECT count(*) FROM t").unwrap();
                }
            });
        }
    })
    .unwrap();
    let delta = obs::metrics().queries_total.get() - before;
    // ≥: other tests in this binary may run queries concurrently.
    assert!(delta >= THREADS * QUERIES, "counted {delta} queries");
}

#[test]
fn query_ref_rejects_writes() {
    let mut db = Database::new_in_memory();
    db.execute("CREATE TABLE t (id INT)").unwrap();
    assert!(db.query_ref("INSERT INTO t VALUES (1)").is_err());
    assert!(db.query_ref("DELETE FROM t").is_err());
    assert!(db.query_ref("SELECT count(*) FROM t").is_ok());
}
