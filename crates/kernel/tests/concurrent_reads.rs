//! Shared-reference read concurrency: the engine's internal locking
//! (buffer-pool mutex, per-index mutexes) must let many threads run
//! SELECTs against one `Database` simultaneously with consistent results.

use mlql_kernel::Database;

#[test]
fn parallel_selects_are_consistent() {
    let mut db = Database::new_in_memory();
    db.execute("CREATE TABLE t (id INT, grp INT)").unwrap();
    for i in 0..5000 {
        db.execute(&format!("INSERT INTO t VALUES ({i}, {})", i % 7)).unwrap();
    }
    db.execute("CREATE INDEX t_id ON t (id) USING btree").unwrap();
    db.execute("ANALYZE t").unwrap();
    let db = &db;

    crossbeam::scope(|scope| {
        let mut handles = Vec::new();
        for w in 0..8 {
            handles.push(scope.spawn(move |_| {
                for round in 0..20 {
                    let probe = (w * 131 + round * 17) % 5000;
                    let point = db
                        .query_ref(&format!("SELECT grp FROM t WHERE id = {probe}"))
                        .unwrap();
                    assert_eq!(point.len(), 1);
                    assert_eq!(point[0][0].as_int(), Some((probe % 7) as i64));
                    let agg = db.query_ref("SELECT count(*) FROM t WHERE grp = 3").unwrap();
                    assert_eq!(agg[0][0].as_int(), Some(714));
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
    })
    .unwrap();
}

#[test]
fn query_ref_rejects_writes() {
    let mut db = Database::new_in_memory();
    db.execute("CREATE TABLE t (id INT)").unwrap();
    assert!(db.query_ref("INSERT INTO t VALUES (1)").is_err());
    assert!(db.query_ref("DELETE FROM t").is_err());
    assert!(db.query_ref("SELECT count(*) FROM t").is_ok());
}
