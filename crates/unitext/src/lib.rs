//! # UniText — the multilingual text datatype of the Mural algebra
//!
//! This crate implements the `UniText` datatype proposed in §3.1 of
//! *On Pushing Multilingual Query Operators into Relational Engines*
//! (Kumaran, Chowdary & Haritsa, ICDE 2006).
//!
//! A [`UniText`] value is a 2-tuple of a Unicode text string and an
//! identifier of the natural language the string is written in.  The explicit
//! language identifier is necessary because several languages share a script
//! (e.g. Hindi and Marathi share Devanagari; English and French share Latin),
//! and the same written string may have different pronunciations or meanings
//! depending on its language.
//!
//! In addition, a `UniText` may *optionally* carry a materialized phonemic
//! string (IPA) so that homophonic matching does not have to re-run the
//! grapheme-to-phoneme conversion on every comparison — the paper
//! materializes phoneme strings at insertion time (§4.2) and all reported
//! experiments assume materialized phonemes (§5.3).
//!
//! The paper's *composing* operator (⊕) and *decomposing* operator (⊗) map to
//! [`UniText::compose`] and [`UniText::decompose`].

pub mod lang;
pub mod script;
pub mod text;

pub use lang::{LangId, Language, LanguageRegistry};
pub use script::{detect_script, Script};
pub use text::UniText;
