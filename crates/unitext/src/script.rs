//! Unicode script detection.
//!
//! Several languages share a script, so a script alone does not identify a
//! language (§3.1 of the paper) — but the reverse mapping is still useful:
//! it lets the engine sanity-check language tags at insertion time and lets
//! the data generator tag synthesized strings.

/// Writing systems relevant to the paper's experiments.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Script {
    /// Basic Latin + Latin-1 supplement + Latin extended (English, French, ...).
    Latin,
    /// Devanagari (Hindi, Marathi, Sanskrit, ...). U+0900–U+097F.
    Devanagari,
    /// Tamil. U+0B80–U+0BFF.
    Tamil,
    /// Kannada. U+0C80–U+0CFF.
    Kannada,
    /// Any other identified script.
    Other,
    /// Empty strings / strings of only digits & punctuation.
    Unknown,
}

/// Classify a single character.
pub fn script_of_char(c: char) -> Script {
    match c as u32 {
        0x0041..=0x005A | 0x0061..=0x007A | 0x00C0..=0x024F => Script::Latin,
        0x0900..=0x097F => Script::Devanagari,
        0x0B80..=0x0BFF => Script::Tamil,
        0x0C80..=0x0CFF => Script::Kannada,
        u if u < 0x80 => Script::Unknown, // digits, punctuation, space
        0x2000..=0x206F => Script::Unknown, // general punctuation
        _ => Script::Other,
    }
}

/// Detect the dominant script of a string.
///
/// The dominant script is the one covering the most letters; characters with
/// `Unknown` script (digits, punctuation, whitespace) are ignored.  A string
/// with no scripted character at all yields [`Script::Unknown`].
pub fn detect_script(s: &str) -> Script {
    let mut counts = [0usize; 5]; // Latin, Devanagari, Tamil, Kannada, Other
    for c in s.chars() {
        match script_of_char(c) {
            Script::Latin => counts[0] += 1,
            Script::Devanagari => counts[1] += 1,
            Script::Tamil => counts[2] += 1,
            Script::Kannada => counts[3] += 1,
            Script::Other => counts[4] += 1,
            Script::Unknown => {}
        }
    }
    let (best, &n) = counts
        .iter()
        .enumerate()
        .max_by_key(|&(_, &n)| n)
        .expect("counts is non-empty");
    if n == 0 {
        return Script::Unknown;
    }
    match best {
        0 => Script::Latin,
        1 => Script::Devanagari,
        2 => Script::Tamil,
        3 => Script::Kannada,
        _ => Script::Other,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latin_detection() {
        assert_eq!(detect_script("Nehru"), Script::Latin);
        assert_eq!(detect_script("Témoin"), Script::Latin);
    }

    #[test]
    fn devanagari_detection() {
        assert_eq!(detect_script("नेहरू"), Script::Devanagari);
    }

    #[test]
    fn tamil_detection() {
        assert_eq!(detect_script("நேரு"), Script::Tamil);
    }

    #[test]
    fn kannada_detection() {
        assert_eq!(detect_script("ನೆಹರು"), Script::Kannada);
    }

    #[test]
    fn punctuation_and_digits_are_unknown() {
        assert_eq!(detect_script(""), Script::Unknown);
        assert_eq!(detect_script("42 -- ?!"), Script::Unknown);
    }

    #[test]
    fn dominant_script_wins_in_mixed_text() {
        // Mostly Tamil with one Latin letter.
        assert_eq!(detect_script("நேரு-a-நேரு"), Script::Tamil);
    }

    #[test]
    fn cjk_maps_to_other() {
        assert_eq!(detect_script("漢字"), Script::Other);
    }
}
