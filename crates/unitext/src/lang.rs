//! Language identifiers and the language registry.
//!
//! `LangID` in the paper is an opaque identifier attached to every `UniText`
//! value.  We model it as a small integer newtype ([`LangId`]) resolved
//! through a [`LanguageRegistry`], mirroring how an engine catalog would map
//! language names in SQL (`... IN English, Hindi, Tamil`) to internal ids.

use crate::script::Script;
use std::fmt;

/// A compact identifier for a natural language.
///
/// `LangId(0)` is reserved for [`LangId::UNKNOWN`], used when a value was
/// ingested without language tagging and the script detector could not
/// disambiguate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LangId(pub u16);

impl LangId {
    /// The "unknown / untagged" language.
    pub const UNKNOWN: LangId = LangId(0);

    /// Raw integer value, as stored in on-disk tuples.
    #[inline]
    pub fn raw(self) -> u16 {
        self.0
    }
}

impl fmt::Display for LangId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lang#{}", self.0)
    }
}

/// Static description of one language known to the registry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Language {
    /// Internal identifier.
    pub id: LangId,
    /// Canonical English name, as used in SQL (`IN English, Hindi, Tamil`).
    pub name: String,
    /// ISO-639-1 style two letter code (lowercase).
    pub iso: String,
    /// The script the language is conventionally written in.
    pub script: Script,
}

/// Registry mapping language names/codes to [`LangId`]s.
///
/// A fresh registry is pre-populated with the languages that appear in the
/// paper's running examples and experiments: English, French, Hindi, Tamil,
/// Kannada — plus German and Spanish to exercise shared-script ambiguity in
/// tests.  Additional languages can be registered at run time (the engine's
/// catalog does this when an administrator runs the equivalent of
/// `CREATE LANGUAGE`).
#[derive(Debug, Clone)]
pub struct LanguageRegistry {
    langs: Vec<Language>,
}

impl Default for LanguageRegistry {
    fn default() -> Self {
        Self::new()
    }
}

impl LanguageRegistry {
    /// Create a registry with the built-in languages.
    pub fn new() -> Self {
        let mut reg = LanguageRegistry {
            langs: vec![Language {
                id: LangId::UNKNOWN,
                name: "Unknown".to_owned(),
                iso: "xx".to_owned(),
                script: Script::Unknown,
            }],
        };
        for (name, iso, script) in [
            ("English", "en", Script::Latin),
            ("French", "fr", Script::Latin),
            ("German", "de", Script::Latin),
            ("Spanish", "es", Script::Latin),
            ("Hindi", "hi", Script::Devanagari),
            ("Tamil", "ta", Script::Tamil),
            ("Kannada", "kn", Script::Kannada),
        ] {
            reg.register(name, iso, script);
        }
        reg
    }

    /// Register a new language and return its id.  Registering a name that
    /// already exists returns the existing id (idempotent).
    pub fn register(&mut self, name: &str, iso: &str, script: Script) -> LangId {
        if let Some(l) = self.lookup(name) {
            return l.id;
        }
        let id = LangId(self.langs.len() as u16);
        self.langs.push(Language {
            id,
            name: name.to_owned(),
            iso: iso.to_owned(),
            script,
        });
        id
    }

    /// Look a language up by canonical name or ISO code (case-insensitive).
    pub fn lookup(&self, name_or_iso: &str) -> Option<&Language> {
        self.langs.iter().find(|l| {
            l.name.eq_ignore_ascii_case(name_or_iso) || l.iso.eq_ignore_ascii_case(name_or_iso)
        })
    }

    /// Resolve an id back to its language description.
    pub fn get(&self, id: LangId) -> Option<&Language> {
        self.langs.get(id.0 as usize)
    }

    /// Id for a canonical name; panics with a clear message when absent.
    /// Convenience for test and example code.
    pub fn id_of(&self, name: &str) -> LangId {
        self.lookup(name)
            .unwrap_or_else(|| panic!("language {name:?} is not registered"))
            .id
    }

    /// All registered languages, excluding the `Unknown` sentinel.
    pub fn iter(&self) -> impl Iterator<Item = &Language> {
        self.langs.iter().skip(1)
    }

    /// Number of registered languages, excluding the `Unknown` sentinel.
    pub fn len(&self) -> usize {
        self.langs.len() - 1
    }

    /// True when no real language is registered (never for `new()`).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// All languages written in `script` — used to disambiguate untagged
    /// strings: if exactly one registered language uses the detected script,
    /// tagging is unambiguous.
    pub fn languages_of_script(&self, script: Script) -> Vec<&Language> {
        self.iter().filter(|l| l.script == script).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtin_languages_resolve_by_name_and_iso() {
        let reg = LanguageRegistry::new();
        let en = reg.lookup("English").unwrap();
        assert_eq!(reg.lookup("en").unwrap().id, en.id);
        assert_eq!(reg.lookup("ENGLISH").unwrap().id, en.id);
        assert_eq!(en.script, Script::Latin);
        let ta = reg.lookup("Tamil").unwrap();
        assert_eq!(ta.script, Script::Tamil);
        assert_ne!(en.id, ta.id);
    }

    #[test]
    fn register_is_idempotent() {
        let mut reg = LanguageRegistry::new();
        let a = reg.register("Telugu", "te", Script::Other);
        let b = reg.register("Telugu", "te", Script::Other);
        assert_eq!(a, b);
        assert_eq!(reg.get(a).unwrap().name, "Telugu");
    }

    #[test]
    fn shared_script_is_ambiguous() {
        let reg = LanguageRegistry::new();
        let latin = reg.languages_of_script(Script::Latin);
        assert!(
            latin.len() >= 2,
            "Latin must be shared (English, French, ...)"
        );
        let kn = reg.languages_of_script(Script::Kannada);
        assert_eq!(kn.len(), 1);
    }

    #[test]
    fn unknown_sentinel_not_iterated() {
        let reg = LanguageRegistry::new();
        assert!(reg.iter().all(|l| l.id != LangId::UNKNOWN));
        assert_eq!(reg.len(), 7);
        assert!(!reg.is_empty());
    }

    #[test]
    fn id_roundtrip() {
        let reg = LanguageRegistry::new();
        for l in reg.iter() {
            assert_eq!(reg.get(l.id).unwrap().name, l.name);
        }
    }
}
