//! The `UniText` value itself: compose (⊕), decompose (⊗), comparisons.

use crate::lang::LangId;
use crate::script::{detect_script, Script};
use std::cmp::Ordering;
use std::fmt;

/// A multilingual text value: a Unicode string tagged with its language, and
/// optionally carrying a materialized phonemic (IPA) string.
///
/// * Ordinary text comparison operators (`=`, `<`, `<=`, `>`, `>=` in SQL)
///   operate **only on the text component** (§3.2.1), so that `UniText`
///   behaves exactly like `Text` for the existing relational operators.
///   `PartialOrd`/`Ord` here implement that text-only ordering.
/// * The *UniText comparison* operator ≐ of the paper compares **both**
///   components; it is [`UniText::identical`].
/// * `PartialEq`/`Eq`/`Hash` follow ≐ (both components) because Rust
///   collections need equality consistent with identity; SQL-level `=`
///   dispatches to [`UniText::text_eq`] instead.
///
/// The materialized phoneme string is deliberately **excluded** from every
/// comparison: it is a cache, not part of the value (§3.1: "UniText can be
/// made to optionally store additional information, such as the materialized
/// phoneme strings ... to improve the run-time performance").
#[derive(Debug, Clone)]
pub struct UniText {
    text: String,
    lang: LangId,
    /// Materialized phonemic string in the canonical IPA-subset alphabet,
    /// filled in at insertion time by the engine when a phoneme converter is
    /// registered for `lang`.
    phoneme: Option<String>,
}

impl UniText {
    /// The composing operator ⊕: build a `UniText` from a Unicode string and
    /// its language identifier.
    pub fn compose(text: impl Into<String>, lang: LangId) -> Self {
        UniText {
            text: text.into(),
            lang,
            phoneme: None,
        }
    }

    /// Compose with an untagged string, inferring the language from its
    /// script when the script is unique to one registered language.
    /// Falls back to [`LangId::UNKNOWN`].
    pub fn compose_untagged(text: impl Into<String>, registry: &crate::LanguageRegistry) -> Self {
        let text = text.into();
        let script = detect_script(&text);
        let candidates = registry.languages_of_script(script);
        let lang = if candidates.len() == 1 {
            candidates[0].id
        } else {
            LangId::UNKNOWN
        };
        UniText::compose(text, lang)
    }

    /// The decomposing operator ⊗: recover the `(Text, LangID)` pair.
    pub fn decompose(&self) -> (&str, LangId) {
        (&self.text, self.lang)
    }

    /// The text component.
    #[inline]
    pub fn text(&self) -> &str {
        &self.text
    }

    /// The language component.
    #[inline]
    pub fn lang(&self) -> LangId {
        self.lang
    }

    /// The materialized phonemic string, if any.
    #[inline]
    pub fn phoneme(&self) -> Option<&str> {
        self.phoneme.as_deref()
    }

    /// Attach a materialized phonemic string (builder style).
    pub fn with_phoneme(mut self, phoneme: impl Into<String>) -> Self {
        self.phoneme = Some(phoneme.into());
        self
    }

    /// Attach or replace the materialized phonemic string in place.
    pub fn set_phoneme(&mut self, phoneme: impl Into<String>) {
        self.phoneme = Some(phoneme.into());
    }

    /// Drop the materialized phonemic string (e.g. after an `UPDATE` of the
    /// text component invalidates the cache).
    pub fn clear_phoneme(&mut self) {
        self.phoneme = None;
    }

    /// Script of the text component.
    pub fn script(&self) -> Script {
        detect_script(&self.text)
    }

    /// SQL `=` on UniText: text component only (§3.2.1).
    #[inline]
    pub fn text_eq(&self, other: &UniText) -> bool {
        self.text == other.text
    }

    /// SQL `<`/`>`/... on UniText: text component only.
    #[inline]
    pub fn text_cmp(&self, other: &UniText) -> Ordering {
        self.text.cmp(&other.text)
    }

    /// The ≐ operator: both text and language components equal.
    #[inline]
    pub fn identical(&self, other: &UniText) -> bool {
        self.text == other.text && self.lang == other.lang
    }

    /// Length of the text component in Unicode scalar values — the `l`
    /// (average record length) parameter of the paper's cost models counts
    /// characters, not bytes.
    pub fn char_len(&self) -> usize {
        self.text.chars().count()
    }
}

impl PartialEq for UniText {
    fn eq(&self, other: &Self) -> bool {
        self.identical(other)
    }
}
impl Eq for UniText {}

impl std::hash::Hash for UniText {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.text.hash(state);
        self.lang.hash(state);
    }
}

impl PartialOrd for UniText {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Ordering is text-first (SQL semantics), language id as tie-break so that
/// `Ord` stays consistent with `Eq`.
impl Ord for UniText {
    fn cmp(&self, other: &Self) -> Ordering {
        self.text
            .cmp(&other.text)
            .then_with(|| self.lang.cmp(&other.lang))
    }
}

impl fmt::Display for UniText {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "⟨{}, {}⟩", self.text, self.lang)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LanguageRegistry;

    fn reg() -> LanguageRegistry {
        LanguageRegistry::new()
    }

    #[test]
    fn compose_decompose_roundtrip() {
        let r = reg();
        let u = UniText::compose("A Sample String", r.id_of("English"));
        let (t, l) = u.decompose();
        assert_eq!(t, "A Sample String");
        assert_eq!(l, r.id_of("English"));
    }

    #[test]
    fn text_eq_ignores_language() {
        let r = reg();
        let a = UniText::compose("Nehru", r.id_of("English"));
        let b = UniText::compose("Nehru", r.id_of("French"));
        assert!(a.text_eq(&b));
        assert!(!a.identical(&b));
        assert_ne!(a, b); // Eq follows ≐
    }

    #[test]
    fn identical_requires_both_components() {
        let r = reg();
        let a = UniText::compose("Une Corde Témoin", r.id_of("French"));
        let b = a.clone();
        assert!(a.identical(&b));
        assert_eq!(a, b);
    }

    #[test]
    fn phoneme_cache_excluded_from_equality() {
        let r = reg();
        let a = UniText::compose("Nehru", r.id_of("English"));
        let b = a.clone().with_phoneme("nehru");
        assert_eq!(a, b);
        assert!(a.identical(&b));
        assert_eq!(b.phoneme(), Some("nehru"));
        assert_eq!(a.phoneme(), None);
    }

    #[test]
    fn untagged_composition_uses_unique_script() {
        let r = reg();
        let ta = UniText::compose_untagged("நேரு", &r);
        assert_eq!(ta.lang(), r.id_of("Tamil"));
        // Latin is shared between several registered languages → unknown.
        let en = UniText::compose_untagged("Nehru", &r);
        assert_eq!(en.lang(), LangId::UNKNOWN);
    }

    #[test]
    fn ordering_is_text_first() {
        let r = reg();
        let a = UniText::compose("abc", r.id_of("French"));
        let b = UniText::compose("abd", r.id_of("English"));
        assert!(a < b);
        assert_eq!(a.text_cmp(&b), Ordering::Less);
    }

    #[test]
    fn char_len_counts_scalars_not_bytes() {
        let r = reg();
        let u = UniText::compose("நேரு", r.id_of("Tamil"));
        assert_eq!(u.char_len(), 4);
        assert!(u.text().len() > 4);
    }

    #[test]
    fn clear_phoneme_invalidates_cache() {
        let r = reg();
        let mut u = UniText::compose("Nehru", r.id_of("English")).with_phoneme("nehru");
        u.clear_phoneme();
        assert_eq!(u.phoneme(), None);
    }
}
