//! # Datagen — deterministic multilingual datasets and workloads
//!
//! The paper's evaluation used a pre-tagged multilingual names dataset
//! (~50 K records) and the English WordNet; neither is shippable here, so
//! this crate fabricates equivalents with the same statistical structure
//! (see DESIGN.md §2 for the substitution argument):
//!
//! * [`names`] — a seed list of romanized Indian & Western surnames
//!   expanded across scripts (Latin, Devanagari, Tamil, Kannada) with
//!   controlled orthographic noise, giving known cross-script homophone
//!   clusters.
//! * [`books`] — the Books.com catalog of the paper's Figure 1, at any
//!   scale, with multilingual authors, titles and categories drawn from
//!   the taxonomy fragment.
//! * [`workload`] — query workload generators for the optimizer-validation
//!   experiment (Figure 6).

pub mod books;
pub mod names;
pub mod workload;

pub use books::{books_catalog, BookRecord};
pub use names::{names_dataset, NameRecord, NamesConfig};
pub use workload::{fig6_workload, WorkloadQuery};
