//! The Books.com catalog (Figure 1) at arbitrary scale.

use crate::names::{names_dataset, NamesConfig};
use mlql_unitext::{LanguageRegistry, UniText};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One catalog row: the columns of the paper's Figure 1.
#[derive(Debug, Clone)]
pub struct BookRecord {
    /// Book id.
    pub id: i64,
    /// Author name (multilingual).
    pub author: UniText,
    /// Title (multilingual; synthesized per language).
    pub title: UniText,
    /// Category (multilingual concept — a word form from the taxonomy).
    pub category: UniText,
    /// Display language name.
    pub language: String,
    /// Price.
    pub price: f64,
}

/// Categories of the worked-example fragment, per language.
const CATEGORIES: &[(&str, &str)] = &[
    ("History", "English"),
    ("Historiography", "English"),
    ("Biography", "English"),
    ("Autobiography", "English"),
    ("Fiction", "English"),
    ("Novel", "English"),
    ("Histoire", "French"),
    ("Biographie", "French"),
    ("சரித்திரம்", "Tamil"),
];

const TITLE_WORDS: &[&str] = &[
    "glimpses",
    "history",
    "letters",
    "discovery",
    "freedom",
    "india",
    "world",
    "story",
    "midnight",
    "truth",
    "experiments",
    "wings",
    "fire",
    "river",
    "song",
];

/// Generate `n` catalog rows (deterministic).
pub fn books_catalog(registry: &LanguageRegistry, n: usize, seed: u64) -> Vec<BookRecord> {
    let mut rng = StdRng::seed_from_u64(seed);
    let authors = names_dataset(
        registry,
        &NamesConfig {
            records: n.max(1),
            noise: 0.2,
            seed: seed ^ 0xbeef,
            ..NamesConfig::default()
        },
    );
    let mut out = Vec::with_capacity(n);
    for (i, author_rec) in authors.into_iter().enumerate().take(n) {
        let (cat, cat_lang) = CATEGORIES[rng.gen_range(0..CATEGORIES.len())];
        let lang_name = registry
            .get(author_rec.name.lang())
            .map(|l| l.name.clone())
            .unwrap_or_else(|| "Unknown".into());
        let w1 = TITLE_WORDS[rng.gen_range(0..TITLE_WORDS.len())];
        let w2 = TITLE_WORDS[rng.gen_range(0..TITLE_WORDS.len())];
        let title = UniText::compose(format!("{w1} {w2} {i}"), author_rec.name.lang());
        out.push(BookRecord {
            id: i as i64,
            author: author_rec.name,
            title,
            category: UniText::compose(cat, registry.id_of(cat_lang)),
            language: lang_name,
            price: 5.0 + rng.gen_range(0..4500) as f64 / 100.0,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_n_rows_deterministically() {
        let reg = LanguageRegistry::new();
        let a = books_catalog(&reg, 500, 42);
        let b = books_catalog(&reg, 500, 42);
        assert_eq!(a.len(), 500);
        assert_eq!(a[123].author, b[123].author);
        assert_eq!(a[123].price, b[123].price);
    }

    #[test]
    fn categories_span_languages() {
        let reg = LanguageRegistry::new();
        let rows = books_catalog(&reg, 1000, 7);
        let fr = reg.id_of("French");
        let ta = reg.id_of("Tamil");
        assert!(rows.iter().any(|r| r.category.lang() == fr));
        assert!(rows.iter().any(|r| r.category.lang() == ta));
        assert!(rows.iter().any(|r| r.category.text() == "History"));
    }

    #[test]
    fn ids_are_sequential_and_prices_bounded() {
        let reg = LanguageRegistry::new();
        let rows = books_catalog(&reg, 100, 1);
        for (i, r) in rows.iter().enumerate() {
            assert_eq!(r.id, i as i64);
            assert!((5.0..50.0).contains(&r.price));
        }
    }
}
