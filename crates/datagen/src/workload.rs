//! Workload generator for the optimizer-validation experiment (Figure 6).
//!
//! §5.2: "a set of tables of varying characteristics (in terms of attribute
//! count and attribute size) were created and populated with different data
//! sets (with varying record counts and number of database blocks).  Then
//! the selected queries were run over a range of selectivities (by
//! appropriately setting the threshold parameters) ... between different
//! runs of the same query, duplicate records were introduced in the tables
//! and the histograms rebuilt".
//!
//! [`fig6_workload`] produces that grid as declarative descriptions the
//! harness turns into DDL + loads + queries.

/// One Figure-6 configuration.
#[derive(Debug, Clone)]
pub struct WorkloadQuery {
    /// Left table row count.
    pub left_rows: usize,
    /// Right table row count.
    pub right_rows: usize,
    /// Extra filler columns (attribute count variation).
    pub filler_cols: usize,
    /// Filler column width in characters (attribute size variation).
    pub filler_width: usize,
    /// ψ threshold for the run (selectivity variation).
    pub threshold: i64,
    /// Duplication factor applied before re-ANALYZE (histogram variation).
    pub duplication: usize,
}

/// The experiment grid.  `scale` multiplies the base table sizes so the
/// harness can run quick (scale 1) or paper-scale (scale 8+) sweeps.
pub fn fig6_workload(scale: usize) -> Vec<WorkloadQuery> {
    let scale = scale.max(1);
    let mut out = Vec::new();
    for &(l, r) in &[(300, 300), (800, 400), (1500, 750)] {
        for &(cols, width) in &[(0, 0), (2, 24), (4, 64)] {
            for &k in &[1i64, 2, 3] {
                for &dup in &[1usize, 2] {
                    out.push(WorkloadQuery {
                        left_rows: l * scale,
                        right_rows: r * scale,
                        filler_cols: cols,
                        filler_width: width,
                        threshold: k,
                        duplication: dup,
                    });
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_covers_all_dimensions() {
        let w = fig6_workload(1);
        assert_eq!(w.len(), 3 * 3 * 3 * 2);
        assert!(w.iter().any(|q| q.filler_cols == 4));
        assert!(w.iter().any(|q| q.threshold == 3));
        assert!(w.iter().any(|q| q.duplication == 2));
        let sizes: std::collections::HashSet<usize> = w.iter().map(|q| q.left_rows).collect();
        assert_eq!(sizes.len(), 3);
    }

    #[test]
    fn scale_multiplies_rows() {
        let a = fig6_workload(1);
        let b = fig6_workload(4);
        assert_eq!(b[0].left_rows, a[0].left_rows * 4);
    }
}
