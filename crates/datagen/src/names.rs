//! Multilingual names dataset generator (the ψ evaluation corpus, §5.1).

use mlql_phonetics::indic::IndicScript;
use mlql_phonetics::translit::to_indic;
use mlql_unitext::{LanguageRegistry, UniText};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Seed list of romanized surnames (Indian + Western), the base homophone
/// classes of the generated corpus.
pub const SEED_NAMES: &[&str] = &[
    "nehru",
    "gandhi",
    "patel",
    "bose",
    "naidu",
    "kumar",
    "sharma",
    "gupta",
    "reddy",
    "iyer",
    "menon",
    "pillai",
    "rao",
    "verma",
    "mishra",
    "chopra",
    "kapoor",
    "malhotra",
    "banerjee",
    "mukherjee",
    "chatterjee",
    "ghosh",
    "dutta",
    "sen",
    "das",
    "roy",
    "singh",
    "yadav",
    "joshi",
    "desai",
    "mehta",
    "shah",
    "trivedi",
    "pandey",
    "tiwari",
    "dubey",
    "saxena",
    "srivastava",
    "agarwal",
    "jain",
    "khanna",
    "bhatia",
    "arora",
    "sethi",
    "anand",
    "bhatt",
    "nair",
    "kurup",
    "raman",
    "krishnan",
    "subramanian",
    "venkatesan",
    "natarajan",
    "sundaram",
    "rajan",
    "chandran",
    "balan",
    "mohan",
    "prasad",
    "murthy",
    "hegde",
    "shetty",
    "kamath",
    "pai",
    "bhandary",
    "gowda",
    "miller",
    "meyer",
    "smith",
    "johnson",
    "brown",
    "taylor",
    "walker",
    "lewis",
    "clark",
    "hall",
    "allen",
    "young",
    "king",
    "wright",
    "scott",
    "green",
    "baker",
    "adams",
    "nelson",
    "carter",
    "mitchell",
    "roberts",
    "turner",
    "phillips",
    "campbell",
    "parker",
    "evans",
    "edwards",
    "collins",
    "stewart",
    "morris",
    "rogers",
    "reed",
    "cook",
    "morgan",
    "bell",
    "murphy",
    "bailey",
    "rivera",
    "cooper",
];

/// One generated record.
#[derive(Debug, Clone)]
pub struct NameRecord {
    /// The multilingual name.
    pub name: UniText,
    /// Index of the seed name this record derives from (records sharing a
    /// seed are ground-truth homophones — used to sanity-check recall).
    pub seed: usize,
}

/// Generator configuration.
#[derive(Debug, Clone)]
pub struct NamesConfig {
    /// Total number of records (the paper used ≈ 50 000).
    pub records: usize,
    /// Probability of injecting one orthographic noise edit into a
    /// romanized variant (models spelling variation in real tagged data).
    pub noise: f64,
    /// RNG seed.
    pub seed: u64,
    /// Number of distinct name stems.  The curated [`SEED_NAMES`] come
    /// first; the rest are synthesized pronounceable stems.  Real tagged
    /// name corpora are mostly-distinct (the paper's 50 K set), which is
    /// what makes metric-index pruning hard — a low stem count would make
    /// the M-Tree look unrealistically effective.
    pub distinct: usize,
}

impl Default for NamesConfig {
    fn default() -> Self {
        NamesConfig {
            records: 50_000,
            noise: 0.25,
            seed: 0xa11ce,
            distinct: 8000,
        }
    }
}

/// Deterministic pronounceable stem for seed indexes beyond the curated
/// list: 2–4 CV(C) syllables.
fn synth_stem(ordinal: usize) -> String {
    const ONSETS: [&str; 16] = [
        "k", "t", "n", "r", "s", "m", "d", "p", "l", "b", "g", "v", "ch", "sh", "j", "h",
    ];
    const VOWELS: [&str; 7] = ["a", "e", "i", "o", "u", "aa", "ee"];
    const CODAS: [&str; 6] = ["", "", "n", "r", "l", "m"];
    let mut x = ordinal.wrapping_mul(0x9e3779b9).wrapping_add(0x5bd1e995);
    let syllables = 2 + (x % 3);
    x /= 3;
    let mut s = String::new();
    for _ in 0..syllables {
        s.push_str(ONSETS[x % ONSETS.len()]);
        x = x / ONSETS.len() + 0x1234567;
        s.push_str(VOWELS[x % VOWELS.len()]);
        x = x / VOWELS.len() + 0x89abcd;
        s.push_str(CODAS[x % CODAS.len()]);
        x = x / CODAS.len() + 0xfeed;
    }
    s
}

/// The romanized stem for a seed index (curated first, synthetic beyond).
pub fn stem(seed: usize) -> String {
    if seed < SEED_NAMES.len() {
        SEED_NAMES[seed].to_string()
    } else {
        synth_stem(seed)
    }
}

/// Small orthographic edits that preserve pronounceability.
fn perturb(name: &str, rng: &mut StdRng) -> String {
    let chars: Vec<char> = name.chars().collect();
    if chars.len() < 3 {
        return name.to_string();
    }
    let mut out = chars.clone();
    match rng.gen_range(0..4) {
        // double a consonant
        0 => {
            let i = rng.gen_range(1..out.len());
            let c = out[i];
            if !"aeiou".contains(c) {
                out.insert(i, c);
            }
        }
        // swap a vowel
        1 => {
            let vowels = ['a', 'e', 'i', 'o', 'u'];
            if let Some(i) = (0..out.len()).find(|&i| vowels.contains(&out[i])) {
                out[i] = vowels[rng.gen_range(0..vowels.len())];
            }
        }
        // drop an 'h'
        2 => {
            if let Some(i) = out.iter().position(|&c| c == 'h') {
                out.remove(i);
            }
        }
        // append a vowel
        _ => out.push(['a', 'u'][rng.gen_range(0..2)]),
    }
    out.into_iter().collect()
}

/// Generate the multilingual names corpus: each record picks a seed name,
/// optionally perturbs its romanization, then renders it in one of the
/// four scripts (tagged with the corresponding language).
pub fn names_dataset(registry: &LanguageRegistry, config: &NamesConfig) -> Vec<NameRecord> {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let en = registry.id_of("English");
    let hi = registry.id_of("Hindi");
    let ta = registry.id_of("Tamil");
    let kn = registry.id_of("Kannada");
    let distinct = config.distinct.max(1);
    let mut out = Vec::with_capacity(config.records);
    for i in 0..config.records {
        let seed = i % distinct;
        let mut roman = stem(seed);
        if rng.gen_bool(config.noise) {
            roman = perturb(&roman, &mut rng);
        }
        let name = match rng.gen_range(0..4) {
            0 => UniText::compose(title_case(&roman), en),
            1 => UniText::compose(to_indic(IndicScript::Devanagari, &roman), hi),
            2 => UniText::compose(to_indic(IndicScript::Tamil, &roman), ta),
            _ => UniText::compose(to_indic(IndicScript::Kannada, &roman), kn),
        };
        out.push(NameRecord { name, seed });
    }
    out
}

fn title_case(s: &str) -> String {
    let mut chars = s.chars();
    match chars.next() {
        Some(first) => first.to_uppercase().chain(chars).collect(),
        None => String::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlql_phonetics::distance::within_distance;
    use mlql_phonetics::ConverterRegistry;

    fn small() -> (LanguageRegistry, Vec<NameRecord>) {
        let reg = LanguageRegistry::new();
        let cfg = NamesConfig {
            records: 2000,
            ..NamesConfig::default()
        };
        let records = names_dataset(&reg, &cfg);
        (reg, records)
    }

    #[test]
    fn deterministic_and_sized() {
        let (reg, a) = small();
        let b = names_dataset(
            &reg,
            &NamesConfig {
                records: 2000,
                ..NamesConfig::default()
            },
        );
        assert_eq!(a.len(), 2000);
        assert_eq!(a[17].name, b[17].name);
    }

    #[test]
    fn covers_all_four_languages() {
        let (reg, records) = small();
        for lang in ["English", "Hindi", "Tamil", "Kannada"] {
            let id = reg.id_of(lang);
            assert!(
                records.iter().any(|r| r.name.lang() == id),
                "no records in {lang}"
            );
        }
    }

    #[test]
    fn same_seed_records_are_phonetically_close() {
        // Few stems so each seed has many sibling records.
        let reg = LanguageRegistry::new();
        let records = names_dataset(
            &reg,
            &NamesConfig {
                records: 2000,
                distinct: 100,
                ..NamesConfig::default()
            },
        );
        let convs = ConverterRegistry::with_builtins(&reg);
        // For each seed, most same-seed cross-record pairs should fall
        // within edit distance 3 of each other (noise adds ≤ ~2).
        let nehru: Vec<&NameRecord> = records.iter().filter(|r| r.seed == 0).take(12).collect();
        assert!(nehru.len() >= 4);
        let mut close = 0;
        let mut total = 0;
        for i in 0..nehru.len() {
            for j in i + 1..nehru.len() {
                let a = convs.phonemes_of(&nehru[i].name);
                let b = convs.phonemes_of(&nehru[j].name);
                total += 1;
                if within_distance(a.as_bytes(), b.as_bytes(), 3) {
                    close += 1;
                }
            }
        }
        assert!(
            close * 10 >= total * 7,
            "same-seed pairs should usually be close: {close}/{total}"
        );
    }

    #[test]
    fn different_seeds_are_usually_far() {
        let reg = LanguageRegistry::new();
        let records = names_dataset(
            &reg,
            &NamesConfig {
                records: 2000,
                distinct: 100,
                ..NamesConfig::default()
            },
        );
        let convs = ConverterRegistry::with_builtins(&reg);
        let a = convs.phonemes_of(&records.iter().find(|r| r.seed == 0).unwrap().name);
        let b = convs.phonemes_of(&records.iter().find(|r| r.seed == 1).unwrap().name);
        // nehru vs gandhi: far apart.
        assert!(!within_distance(a.as_bytes(), b.as_bytes(), 3));
    }

    #[test]
    fn synthetic_stems_unique_and_pronounceable() {
        let mut seen = std::collections::HashSet::new();
        let mut dups = 0;
        for i in SEED_NAMES.len()..SEED_NAMES.len() + 4000 {
            let s = stem(i);
            assert!(s.len() >= 3, "{s}");
            assert!(s.chars().all(|c| c.is_ascii_lowercase()));
            if !seen.insert(s) {
                dups += 1;
            }
        }
        // Hash-derived stems may collide occasionally; they must stay rare.
        assert!(dups < 400, "{dups} duplicate stems in 4000");
    }

    #[test]
    fn perturbations_stay_small() {
        let mut rng = StdRng::seed_from_u64(7);
        for seed in SEED_NAMES.iter().take(20) {
            let p = perturb(seed, &mut rng);
            let d = mlql_phonetics::distance::edit_distance(seed.as_bytes(), p.as_bytes());
            assert!(d <= 2, "{seed} -> {p} distance {d}");
        }
    }
}
