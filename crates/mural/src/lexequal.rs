//! The LexEQUAL operator ψ as a first-class engine operator.
//!
//! ψ is registered as a *binary* operator — PostgreSQL's operator extension
//! facility "is restricted to binary operators, and therefore cannot be
//! directly used to implement ψ, which is a tertiary operator.  Therefore,
//! we used the workaround of implementing ψ as a binary operator, making
//! the third input, the error threshold parameter, a user-settable value in
//! a system table" (§4.2).  Our equivalent system table is the session-
//! variable store: `SET lexequal.threshold = 3`.

use crate::selectivity::{psi_default_selectivity, psi_join_selectivity, psi_scan_selectivity};
use crate::types::unitext_of_datum;
use mlql_kernel::catalog::{ExtOperator, OperatorKind, SessionVars};
use mlql_kernel::{DataType, Datum, ExtTypeId};
use mlql_phonetics::distance::{DistanceBuffer, MyersMatcher};
use mlql_phonetics::{ConverterRegistry, PhonemeString};
use mlql_unitext::{LanguageRegistry, UniText};
use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::Arc;

/// Session variable holding ψ's error threshold.
pub const THRESHOLD_VAR: &str = "lexequal.threshold";

/// Default threshold when the session does not set one (the running
/// example of the paper's Figure 2 uses 2).
pub const DEFAULT_THRESHOLD: i64 = 2;

/// Session variable gating the bit-parallel Myers kernel inside the ψ
/// batch path (`SET lexequal.myers = 0` falls back to the banded DP —
/// the A/B knob the `batch_exec` bench uses to isolate the kernel win).
pub const MYERS_VAR: &str = "lexequal.myers";

/// Is the Myers kernel enabled for batch ψ (default: yes)?
pub fn myers_enabled(session: &SessionVars) -> bool {
    session.get_int(MYERS_VAR, 1) != 0
}

thread_local! {
    /// Reused DP rows for the banded edit distance — ψ joins evaluate
    /// millions of pairs and must not allocate per pair.
    static DP: RefCell<DistanceBuffer> = RefCell::new(DistanceBuffer::new());
}

/// Read the threshold from the session.
pub fn threshold(session: &SessionVars) -> usize {
    session.get_int(THRESHOLD_VAR, DEFAULT_THRESHOLD).max(0) as usize
}

/// Phoneme bytes of a value: the materialized cache when present,
/// otherwise a fresh conversion (query constants constructed via
/// `unitext(...)` are materialized by the constructor, so this path is
/// warm in practice).
pub fn phonemes_of(value: &UniText, converters: &ConverterRegistry) -> PhonemeString {
    let m = mlql_kernel::obs::metrics();
    let start = std::time::Instant::now();
    let out = converters.phonemes_of(value);
    m.phoneme_conversions_total.inc();
    m.phoneme_conversion_ns_total
        .add(start.elapsed().as_nanos() as u64);
    out
}

/// The ψ predicate over two datums.
///
/// Fast path: both sides are UniText payloads with *materialized* phoneme
/// strings — compare the cached byte slices directly, no decode, no
/// allocation (this is what §4.2's insertion-time materialization buys).
pub fn psi_matches(
    l: &Datum,
    r: &Datum,
    k: usize,
    converters: &ConverterRegistry,
) -> mlql_kernel::Result<bool> {
    if let (Datum::Ext { bytes: lb, .. }, Datum::Ext { bytes: rb, .. }) = (l, r) {
        if let (Some(lp), Some(rp)) = (
            crate::types::phoneme_slice(lb),
            crate::types::phoneme_slice(rb),
        ) {
            mlql_kernel::obs::metrics().psi_distance_calls_total.inc();
            return Ok(DP.with(|dp| dp.borrow_mut().distance_within(lp, rp, k).is_some()));
        }
    }
    // Slow path: decode and convert on demand.
    let lv = unitext_of_datum(l)?;
    let rv = unitext_of_datum(r)?;
    let lp = phonemes_of(&lv, converters);
    let rp = phonemes_of(&rv, converters);
    if lp.is_empty() && rp.is_empty() {
        // No phonemic information on either side: fall back to exact text
        // equality so ψ degrades gracefully for unknown languages.
        return Ok(lv.text() == rv.text());
    }
    mlql_kernel::obs::metrics().psi_distance_calls_total.inc();
    Ok(DP.with(|dp| {
        dp.borrow_mut()
            .distance_within(lp.as_bytes(), rp.as_bytes(), k)
            .is_some()
    }))
}

/// Batch ψ: `lefts[i] ψ r` for a whole batch against one constant RHS.
///
/// Result-identical to [`psi_matches`] on every element, but the batch
/// shape amortizes everything that does not depend on the LHS row:
///
/// * the RHS phonemes are resolved **once** (materialized slice or one
///   grapheme→phoneme conversion),
/// * slow-path LHS conversions are memoized per distinct value across
///   the batch,
/// * the inner loop runs the bit-parallel Myers (1999) kernel when the
///   RHS phoneme string fits one machine word (≤64 symbols, see
///   [`MyersMatcher`]), falling back to the banded DP above that — both
///   reuse one thread-local [`DistanceBuffer`], borrowed once per batch
///   instead of once per row.
pub fn psi_matches_batch(
    lefts: &[&Datum],
    r: &Datum,
    k: usize,
    converters: &ConverterRegistry,
    use_myers: bool,
) -> mlql_kernel::Result<Vec<Datum>> {
    if lefts.is_empty() {
        return Ok(Vec::new());
    }
    let m = mlql_kernel::obs::metrics();
    let has_slice = |d: &Datum| match d {
        Datum::Ext { bytes, .. } => crate::types::phoneme_slice(bytes).is_some(),
        _ => false,
    };
    let rhs_slice: Option<&[u8]> = match r {
        Datum::Ext { bytes, .. } => crate::types::phoneme_slice(bytes),
        _ => None,
    };
    // Decode the RHS once iff some pair will take the slow path (exactly
    // the pairs where scalar `psi_matches` would convert it per row).
    let need_slow = rhs_slice.is_none() || lefts.iter().any(|l| !has_slice(l));
    let rhs_decoded: Option<(String, PhonemeString)> = if need_slow {
        let rv = unitext_of_datum(r)?;
        let rp = phonemes_of(&rv, converters);
        Some((rv.text().to_string(), rp))
    } else {
        None
    };
    // The materialized slice and a fresh conversion yield the same bytes
    // (the cache is authoritative), so one kernel serves both paths.
    let rp_bytes: &[u8] = match (&rhs_slice, &rhs_decoded) {
        (Some(s), _) => s,
        (None, Some((_, p))) => p.as_bytes(),
        (None, None) => unreachable!("need_slow when no slice"),
    };
    let myers = if use_myers {
        MyersMatcher::new(rp_bytes)
    } else {
        None
    };
    let mut memo: HashMap<&Datum, (String, PhonemeString)> = HashMap::new();
    let mut dist_calls = 0u64;
    let mut out = Vec::with_capacity(lefts.len());
    DP.with(|dp| -> mlql_kernel::Result<()> {
        let dp = &mut *dp.borrow_mut();
        let within = |lp: &[u8], dp: &mut DistanceBuffer| match &myers {
            Some(mm) => mm.distance_within(lp, k).is_some(),
            None => dp.distance_within(lp, rp_bytes, k).is_some(),
        };
        for &l in lefts {
            // Fast path: both sides carry materialized phonemes.
            if rhs_slice.is_some() {
                if let Datum::Ext { bytes: lb, .. } = l {
                    if let Some(lp) = crate::types::phoneme_slice(lb) {
                        dist_calls += 1;
                        out.push(Datum::Bool(within(lp, dp)));
                        continue;
                    }
                }
            }
            // Slow path: decode + convert, memoized per distinct value.
            let (r_text, rp) = rhs_decoded.as_ref().expect("decoded above");
            if !memo.contains_key(l) {
                let lv = unitext_of_datum(l)?;
                let lp = phonemes_of(&lv, converters);
                memo.insert(l, (lv.text().to_string(), lp));
            }
            let (l_text, lp) = &memo[l];
            if lp.is_empty() && rp.is_empty() {
                // Same graceful degradation as `psi_matches`.
                out.push(Datum::Bool(l_text == r_text));
                continue;
            }
            dist_calls += 1;
            out.push(Datum::Bool(within(lp.as_bytes(), dp)));
        }
        Ok(())
    })?;
    m.psi_distance_calls_total.add(dist_calls);
    Ok(out)
}

/// Build the ψ [`ExtOperator`] for registration in the catalog.
pub fn lexequal_operator(
    unitext_type: ExtTypeId,
    converters: Arc<ConverterRegistry>,
    langs: Arc<LanguageRegistry>,
) -> ExtOperator {
    let eval_convs = Arc::clone(&converters);
    let batch_convs = Arc::clone(&converters);
    let sel_convs = Arc::clone(&converters);
    ExtOperator {
        name: "lexequal".into(),
        operand_type: DataType::Ext(unitext_type),
        eval: Arc::new(move |l, r, session| {
            let k = threshold(session);
            Ok(Datum::Bool(psi_matches(l, r, k, &eval_convs)?))
        }),
        eval_batch: Some(Arc::new(move |lefts, r, session| {
            let k = threshold(session);
            psi_matches_batch(lefts, r, k, &batch_convs, myers_enabled(session))
        })),
        // Table 1: ψ commutes, associates, and distributes over ∪.
        kind: OperatorKind {
            commutative: true,
            distributes_over_union: true,
        },
        // Table 3: the banded edit distance costs O(k·l) elementary
        // comparisons per evaluated pair.
        per_tuple_cost: Arc::new(|session, avg_width| {
            let k = threshold(session) as f64;
            (k + 1.0) * avg_width.max(4.0)
        }),
        // §3.4.1: probe the end-biased histogram's MCVs at the threshold,
        // inflate the remainder by the threshold factor.
        selectivity: Arc::new(move |input| {
            let k = threshold(input.session);
            match (input.column, input.constant) {
                (Some(stats), Some(constant)) => {
                    let query = match unitext_of_datum(constant) {
                        Ok(v) => phonemes_of(&v, &sel_convs),
                        Err(_) => return psi_default_selectivity(k),
                    };
                    let mcv_phonemes: Vec<(Vec<u8>, f64)> = stats
                        .mcvs
                        .iter()
                        .filter_map(|(d, f)| {
                            unitext_of_datum(d)
                                .ok()
                                .map(|v| (phonemes_of(&v, &sel_convs).as_bytes().to_vec(), *f))
                        })
                        .collect();
                    psi_scan_selectivity(&mcv_phonemes, query.as_bytes(), k)
                }
                (left, None) => psi_join_selectivity(left, input.other_column, k),
                (None, Some(_)) => psi_default_selectivity(k),
            }
        }),
        // §4.2.1: the M-Tree serves ψ probes with its metric range search.
        index_strategy: Some(("mtree".into(), "within".into())),
        index_extra: Some(Arc::new(|session| Datum::Int(threshold(session) as i64))),
        // `IN (English, Hindi, ...)`: the LHS row matches only when its
        // language is in the list.
        modifier_filter: Some(Arc::new(move |l, mods| {
            let Ok(v) = unitext_of_datum(l) else {
                return false;
            };
            mods.iter().any(|m| {
                langs
                    .lookup(m)
                    .map(|lang| lang.id == v.lang())
                    .unwrap_or(false)
            })
        })),
        // §3.3: approximate-index traversal is linear in the threshold.
        index_scan_fraction: Some(Arc::new(|session| {
            crate::cost::approx_index_fraction(threshold(session))
        })),
        strategy_label: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{unitext_datum, unitext_to_bytes};

    fn setup() -> (Arc<LanguageRegistry>, Arc<ConverterRegistry>, ExtOperator) {
        let langs = Arc::new(LanguageRegistry::new());
        let convs = Arc::new(ConverterRegistry::with_builtins(&langs));
        let op = lexequal_operator(ExtTypeId(0), Arc::clone(&convs), Arc::clone(&langs));
        (langs, convs, op)
    }

    fn ut(langs: &LanguageRegistry, text: &str, lang: &str) -> Datum {
        unitext_datum(ExtTypeId(0), &UniText::compose(text, langs.id_of(lang)))
    }

    #[test]
    fn cross_script_match_at_threshold() {
        let (langs, _, op) = setup();
        let mut session = SessionVars::new();
        session.set(THRESHOLD_VAR, Datum::Int(2));
        let en = ut(&langs, "Nehru", "English");
        let ta = ut(&langs, "நேரு", "Tamil");
        let hi = ut(&langs, "नेहरू", "Hindi");
        assert!((op.eval)(&en, &ta, &session).unwrap().is_true());
        assert!((op.eval)(&en, &hi, &session).unwrap().is_true());
        let other = ut(&langs, "Gandhi", "English");
        assert!(!(op.eval)(&en, &other, &session).unwrap().is_true());
    }

    #[test]
    fn threshold_zero_is_exact_phonemic_equality() {
        let (langs, _, op) = setup();
        let mut session = SessionVars::new();
        session.set(THRESHOLD_VAR, Datum::Int(0));
        let a = ut(&langs, "Nehru", "English");
        let b = ut(&langs, "Neru", "English"); // /neru/ vs /nehru/: d = 1
        assert!(!(op.eval)(&a, &b, &session).unwrap().is_true());
        session.set(THRESHOLD_VAR, Datum::Int(1));
        assert!((op.eval)(&a, &b, &session).unwrap().is_true());
    }

    #[test]
    fn materialized_phonemes_short_circuit_conversion() {
        let (langs, convs, _) = setup();
        let v = UniText::compose("whatever", langs.id_of("English")).with_phoneme("nehru");
        let ph = phonemes_of(&v, &convs);
        assert_eq!(ph.to_ipa(), "nehru", "cache wins over conversion");
        let bytes = unitext_to_bytes(&v);
        let back = crate::types::unitext_from_bytes(&bytes).unwrap();
        assert_eq!(back.phoneme(), Some("nehru"));
    }

    #[test]
    fn modifier_filter_restricts_languages() {
        let (langs, _, op) = setup();
        let filter = op.modifier_filter.as_ref().unwrap();
        let ta = ut(&langs, "நேரு", "Tamil");
        assert!(filter(&ta, &["Tamil".into(), "Hindi".into()]));
        assert!(filter(&ta, &["tamil".into()]), "case-insensitive");
        assert!(!filter(&ta, &["English".into()]));
        assert!(
            !filter(&ta, &["Klingon".into()]),
            "unknown language never matches"
        );
    }

    #[test]
    fn selectivity_uses_constant_and_threshold() {
        use mlql_kernel::catalog::{ColumnStats, SelectivityInput};
        let (langs, _, op) = setup();
        // Build a column whose MCV is ⟨Nehru⟩ at 40%.
        let nehru = ut(&langs, "Nehru", "English");
        let mut vals: Vec<Datum> = std::iter::repeat_n(nehru.clone(), 40).collect();
        for i in 0..60 {
            vals.push(ut(&langs, &format!("zzz{i}"), "English"));
        }
        let stats = ColumnStats::build(&vals);
        let mut session = SessionVars::new();
        session.set(THRESHOLD_VAR, Datum::Int(1));
        let probe = ut(&langs, "Neru", "English");
        let sel = (op.selectivity)(&SelectivityInput {
            column: Some(&stats),
            constant: Some(&probe),
            other_column: None,
            session: &session,
        });
        assert!(sel >= 0.4, "MCV mass must be captured: {sel}");
        // An unrelated probe estimates only the tail.
        let far = ut(&langs, "Ramanujan", "English");
        let sel_far = (op.selectivity)(&SelectivityInput {
            column: Some(&stats),
            constant: Some(&far),
            other_column: None,
            session: &session,
        });
        assert!(sel_far < 0.05, "got {sel_far}");
    }

    #[test]
    fn unknown_language_degrades_to_text_equality() {
        let (_, convs, _) = setup();
        let a = Datum::text("exact");
        let b = Datum::text("exact");
        assert!(psi_matches(&a, &b, 2, &convs).unwrap());
        let c = Datum::text("other");
        // Latin-script untagged text converts through no converter
        // (LangId::UNKNOWN) — exact text equality decides.
        assert!(!psi_matches(&a, &c, 2, &convs).unwrap());
    }

    #[test]
    fn batch_eval_matches_scalar_on_every_element() {
        let (langs, convs, op) = setup();
        // A mix of every evaluation path: materialized fast path,
        // untagged text (empty-phoneme equality fallback), duplicates
        // (exercising the batch memo), and misses.
        let lefts_owned: Vec<Datum> = vec![
            ut(&langs, "Nehru", "English"),
            ut(&langs, "நேரு", "Tamil"),
            ut(&langs, "Gandhi", "English"),
            Datum::text("exact"),
            Datum::text("other"),
            ut(&langs, "Nehru", "English"), // duplicate → memo hit
            ut(&langs, "नेहरू", "Hindi"),
        ];
        let lefts: Vec<&Datum> = lefts_owned.iter().collect();
        for rhs in [ut(&langs, "Neru", "English"), Datum::text("exact")] {
            for k in [0usize, 1, 2, 3] {
                for use_myers in [true, false] {
                    let batch = psi_matches_batch(&lefts, &rhs, k, &convs, use_myers).unwrap();
                    assert_eq!(batch.len(), lefts.len());
                    for (l, got) in lefts.iter().zip(&batch) {
                        let want = psi_matches(l, &rhs, k, &convs).unwrap();
                        assert!(
                            got.is_true() == want,
                            "mismatch for {l:?} ψ {rhs:?} k={k} myers={use_myers}"
                        );
                    }
                }
            }
        }
        // The registered hook agrees with the free function and honors
        // the session knobs.
        let hook = op.eval_batch.as_ref().unwrap();
        let mut session = SessionVars::new();
        session.set(THRESHOLD_VAR, Datum::Int(2));
        let rhs = ut(&langs, "Neru", "English");
        let via_hook = hook(&lefts, &rhs, &session).unwrap();
        let direct = psi_matches_batch(&lefts, &rhs, 2, &convs, true).unwrap();
        for (a, b) in via_hook.iter().zip(&direct) {
            assert!(a.is_true() == b.is_true());
        }
        session.set(MYERS_VAR, Datum::Int(0));
        assert!(!myers_enabled(&session));
        let banded = hook(&lefts, &rhs, &session).unwrap();
        for (a, b) in banded.iter().zip(&direct) {
            assert!(
                a.is_true() == b.is_true(),
                "myers knob must not change results"
            );
        }
    }

    #[test]
    fn per_tuple_cost_scales_with_threshold() {
        let (_, _, op) = setup();
        let mut s0 = SessionVars::new();
        s0.set(THRESHOLD_VAR, Datum::Int(0));
        let mut s3 = SessionVars::new();
        s3.set(THRESHOLD_VAR, Datum::Int(3));
        assert!((op.per_tuple_cost)(&s3, 8.0) > (op.per_tuple_cost)(&s0, 8.0));
    }
}
