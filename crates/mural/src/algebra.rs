//! The Mural algebra at the set level (§3.2).
//!
//! These are the *definitional* semantics of ψ and Ω as operators on sets
//! of UniText values: both produce the tagged Cartesian product of their
//! inputs — ψ tags each pair with the edit distance between the phonemic
//! strings, Ω with the subsumption boolean.  The engine's physical
//! operators must agree with these definitions, and the composition laws
//! of Table 1 are property-tested against them (`tests/algebra_laws.rs`).

use crate::semequal::SemState;
use mlql_phonetics::distance::edit_distance;
use mlql_phonetics::ConverterRegistry;
use mlql_unitext::UniText;
use std::collections::BTreeSet;

/// ψ: Set〈UniText〉 × Set〈UniText〉 → Set〈UniText, UniText, dist〉.
/// "The output is the Cartesian product of the two sets, with each result
/// tuple tagged with the edit-distance between the phonemic strings."
pub fn psi(
    a: &[UniText],
    b: &[UniText],
    converters: &ConverterRegistry,
) -> Vec<(UniText, UniText, usize)> {
    let pa: Vec<Vec<u8>> = a
        .iter()
        .map(|v| converters.phonemes_of(v).as_bytes().to_vec())
        .collect();
    let pb: Vec<Vec<u8>> = b
        .iter()
        .map(|v| converters.phonemes_of(v).as_bytes().to_vec())
        .collect();
    let mut out = Vec::with_capacity(a.len() * b.len());
    for (x, px) in a.iter().zip(&pa) {
        for (y, py) in b.iter().zip(&pb) {
            out.push((x.clone(), y.clone(), edit_distance(px, py)));
        }
    }
    out
}

/// σ over ψ's output: keep pairs within the threshold (how Example 2's
/// query composes σ_{dist ≤ k} with ψ).
pub fn psi_select(
    a: &[UniText],
    b: &[UniText],
    k: usize,
    converters: &ConverterRegistry,
) -> Vec<(UniText, UniText, usize)> {
    psi(a, b, converters)
        .into_iter()
        .filter(|(_, _, d)| *d <= k)
        .collect()
}

/// Ω: Set〈UniText〉 × Set〈UniText〉 → Set〈UniText, UniText, bool〉, the
/// tag being `lhs ∈ TC(rhs)`.
pub fn omega(a: &[UniText], b: &[UniText], state: &SemState) -> Vec<(UniText, UniText, bool)> {
    let mut out = Vec::with_capacity(a.len() * b.len());
    for x in a {
        for y in b {
            out.push((x.clone(), y.clone(), state.omega_matches(x, y)));
        }
    }
    out
}

/// Set union of UniText sets (duplicates removed, ≐ identity).
pub fn union(a: &[UniText], b: &[UniText]) -> Vec<UniText> {
    let set: BTreeSet<UniText> = a.iter().chain(b.iter()).cloned().collect();
    set.into_iter().collect()
}

/// Canonical form of a ψ result for order-insensitive comparison.
pub fn canon_psi(mut rows: Vec<(UniText, UniText, usize)>) -> Vec<(UniText, UniText, usize)> {
    rows.sort();
    rows.dedup();
    rows
}

/// Canonical form of a ψ result with the pair components swapped —
/// commutativity (Table 1) says `canon_psi(psi(a, b)) ==
/// canon_swapped(psi(b, a))`.
pub fn canon_psi_swapped(rows: Vec<(UniText, UniText, usize)>) -> Vec<(UniText, UniText, usize)> {
    canon_psi(rows.into_iter().map(|(x, y, d)| (y, x, d)).collect())
}

/// Canonical form of an Ω result.
pub fn canon_omega(mut rows: Vec<(UniText, UniText, bool)>) -> Vec<(UniText, UniText, bool)> {
    rows.sort();
    rows.dedup();
    rows
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlql_taxonomy::books_fragment;
    use mlql_unitext::LanguageRegistry;
    use std::sync::Arc;

    fn langs() -> Arc<LanguageRegistry> {
        Arc::new(LanguageRegistry::new())
    }

    fn names(reg: &LanguageRegistry, list: &[(&str, &str)]) -> Vec<UniText> {
        list.iter()
            .map(|(t, l)| UniText::compose(*t, reg.id_of(l)))
            .collect()
    }

    #[test]
    fn psi_is_full_tagged_product() {
        let reg = langs();
        let convs = ConverterRegistry::with_builtins(&reg);
        let a = names(&reg, &[("Nehru", "English"), ("Gandhi", "English")]);
        let b = names(&reg, &[("நேரு", "Tamil")]);
        let out = psi(&a, &b, &convs);
        assert_eq!(out.len(), 2, "both input tuples preserved");
        let nehru_pair = out.iter().find(|(x, _, _)| x.text() == "Nehru").unwrap();
        assert!(nehru_pair.2 <= 2);
        let gandhi_pair = out.iter().find(|(x, _, _)| x.text() == "Gandhi").unwrap();
        assert!(gandhi_pair.2 > 2);
    }

    #[test]
    fn psi_select_filters_by_threshold() {
        let reg = langs();
        let convs = ConverterRegistry::with_builtins(&reg);
        let a = names(&reg, &[("Nehru", "English"), ("Gandhi", "English")]);
        let b = names(&reg, &[("நேரு", "Tamil")]);
        let out = psi_select(&a, &b, 2, &convs);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].0.text(), "Nehru");
    }

    #[test]
    fn psi_commutes_modulo_swap() {
        let reg = langs();
        let convs = ConverterRegistry::with_builtins(&reg);
        let a = names(&reg, &[("Nehru", "English"), ("Patel", "English")]);
        let b = names(&reg, &[("நேரு", "Tamil"), ("Meyer", "German")]);
        assert_eq!(
            canon_psi(psi(&a, &b, &convs)),
            canon_psi_swapped(psi(&b, &a, &convs))
        );
    }

    #[test]
    fn psi_distributes_over_union() {
        let reg = langs();
        let convs = ConverterRegistry::with_builtins(&reg);
        let a = names(&reg, &[("Nehru", "English")]);
        let b = names(&reg, &[("Patel", "English")]);
        let c = names(&reg, &[("நேரு", "Tamil")]);
        let lhs = canon_psi(psi(&union(&a, &b), &c, &convs));
        let rhs = canon_psi([psi(&a, &c, &convs), psi(&b, &c, &convs)].concat());
        assert_eq!(lhs, rhs);
    }

    #[test]
    fn omega_does_not_commute() {
        let reg = langs();
        let (taxonomy, _) = books_fragment(&reg);
        let state = SemState::new(Arc::new(taxonomy));
        let a = names(&reg, &[("Biography", "English")]);
        let b = names(&reg, &[("History", "English")]);
        let fwd = omega(&a, &b, &state); // Biography ⊑ History: true
        let bwd = omega(&b, &a, &state); // History ⊑ Biography: false
        assert!(fwd[0].2);
        assert!(!bwd[0].2);
    }

    #[test]
    fn omega_distributes_over_union() {
        let reg = langs();
        let (taxonomy, _) = books_fragment(&reg);
        let state = SemState::new(Arc::new(taxonomy));
        let a = names(&reg, &[("Biography", "English")]);
        let b = names(&reg, &[("Fiction", "English")]);
        let c = names(&reg, &[("History", "English")]);
        let lhs = canon_omega(omega(&union(&a, &b), &c, &state));
        let rhs = canon_omega([omega(&a, &c, &state), omega(&b, &c, &state)].concat());
        assert_eq!(lhs, rhs);
    }

    #[test]
    fn union_deduplicates_by_identity() {
        let reg = langs();
        let a = names(&reg, &[("x", "English"), ("x", "French")]);
        let b = names(&reg, &[("x", "English")]);
        // ⟨x, English⟩ appears once; ⟨x, French⟩ is a distinct value (≐).
        assert_eq!(union(&a, &b).len(), 2);
    }
}
