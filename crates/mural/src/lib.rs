//! # Mural — the multilingual relational algebra, pushed into the engine
//!
//! This crate is the paper's primary contribution: the **UniText** datatype
//! and the **LexEQUAL (ψ)** / **SemEQUAL (Ω)** operators implemented as
//! *first-class operators* of the `mlql-kernel` relational engine, plus
//! their cost models (Table 3), selectivity estimators (§3.4), composition
//! rules (Table 1), the M-Tree access method integration (§4.2.1), and the
//! outside-the-server baseline implementations (§5.3, §5.4).
//!
//! ## Quick start
//!
//! ```
//! use mlql_kernel::Database;
//! use mlql_mural::install;
//!
//! let mut db = Database::new_in_memory();
//! let mural = install(&mut db).unwrap();
//! db.execute("CREATE TABLE book (author UNITEXT, title TEXT)").unwrap();
//! db.execute("INSERT INTO book VALUES (unitext('Nehru', 'English'), 'Letters')").unwrap();
//! db.execute("INSERT INTO book VALUES (unitext('நேரு', 'Tamil'), 'Letters (ta)')").unwrap();
//! db.execute("SET lexequal.threshold = 2").unwrap();
//! let rows = db
//!     .query("SELECT title FROM book WHERE author LEXEQUAL unitext('Nehru','English') IN (English, Tamil)")
//!     .unwrap();
//! assert_eq!(rows.len(), 2);
//! # let _ = mural;
//! ```

pub mod algebra;
pub mod cost;
pub mod functions;
pub mod install;
pub mod lexequal;
pub mod mdi;
pub mod mtree_am;
pub mod outside;
pub mod selectivity;
pub mod semequal;
pub mod types;

pub use install::{install, install_with_taxonomy, Mural};
pub use types::{unitext_datum, unitext_from_bytes, unitext_to_bytes};
