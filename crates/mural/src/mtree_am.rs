//! The M-Tree access method — the paper's GiST-registered metric index
//! (§4.2.1) serving ψ probes through the `"within"` strategy.
//!
//! Keys are the *materialized phoneme strings* of UniText values ("indexes
//! being created on the materialized phoneme strings", §3.3); the metric is
//! the Levenshtein edit distance.  Deletion uses tombstones — the
//! underlying M-Tree, like PostgreSQL-era GiST, does not reclaim entries
//! online.

use crate::types::unitext_of_datum;
use mlql_kernel::index::{AccessMethod, IndexInstance, IndexSearch, TaskRunner};
use mlql_kernel::storage::TupleId;
use mlql_kernel::{Datum, Error, Result};
use mlql_mtree::{MTree, QueryStats, SplitPolicy};
use mlql_phonetics::distance::edit_distance;
use mlql_phonetics::ConverterRegistry;
use parking_lot::Mutex;
use std::collections::HashSet;
use std::sync::Arc;

#[allow(clippy::ptr_arg)]
fn phoneme_metric(a: &Vec<u8>, b: &Vec<u8>) -> f64 {
    edit_distance(a, b) as f64
}

type Metric = fn(&Vec<u8>, &Vec<u8>) -> f64;

/// One live M-Tree index instance.
pub struct MTreeIndex {
    tree: MTree<Vec<u8>, TupleId, Metric>,
    deleted: HashSet<(Vec<u8>, TupleId)>,
    converters: Arc<ConverterRegistry>,
    live: usize,
}

impl MTreeIndex {
    fn new(converters: Arc<ConverterRegistry>, policy: SplitPolicy) -> Self {
        MTreeIndex {
            tree: MTree::with_options(
                phoneme_metric as Metric,
                mlql_mtree::DEFAULT_NODE_CAPACITY,
                policy,
                0x3713,
            ),
            deleted: HashSet::new(),
            converters,
            live: 0,
        }
    }

    /// Phoneme key bytes of an indexed datum.
    fn key_of(&self, d: &Datum) -> Result<Vec<u8>> {
        let v = unitext_of_datum(d)?;
        Ok(self.converters.phonemes_of(&v).as_bytes().to_vec())
    }

    /// Publish metrics, drop tombstoned hits, and package a `"within"`
    /// result — shared by the serial and parallel paths so both report
    /// identically.
    fn finish_within(&self, hits: Vec<(Vec<u8>, TupleId, f64)>, stats: QueryStats) -> IndexSearch {
        let m = mlql_kernel::obs::metrics();
        m.mtree_node_visits_total.add(stats.nodes_visited);
        m.mtree_distance_computations_total
            .add(stats.dist_computations);
        let tids = hits
            .into_iter()
            .filter(|(k, tid, _)| !self.deleted.contains(&(k.clone(), *tid)))
            .map(|(_, tid, _)| tid)
            .collect();
        IndexSearch {
            tids,
            node_visits: stats.nodes_visited,
            comparisons: stats.dist_computations,
        }
    }
}

impl IndexInstance for MTreeIndex {
    fn insert(&mut self, key: &Datum, tid: TupleId) -> Result<()> {
        let ph = self.key_of(key)?;
        // A pending tombstone means the physical entry is still in the
        // tree: clearing the tombstone resurrects it; inserting again
        // would duplicate it.
        if !self.deleted.remove(&(ph.clone(), tid)) {
            self.tree.insert(ph, tid);
        }
        self.live += 1;
        Ok(())
    }

    fn delete(&mut self, key: &Datum, tid: TupleId) -> Result<()> {
        let ph = self.key_of(key)?;
        if self.deleted.insert((ph, tid)) {
            self.live = self.live.saturating_sub(1);
        }
        Ok(())
    }

    fn search(&self, strategy: &str, probe: &Datum, extra: &Datum) -> Result<IndexSearch> {
        let key = self.key_of(probe)?;
        match strategy {
            "within" => {
                let radius = extra.as_int().unwrap_or(0).max(0) as f64;
                let (hits, stats) = self.tree.range(&key, radius);
                Ok(self.finish_within(hits, stats))
            }
            // k-nearest phonemic neighbours — the "best match" LexEQUAL
            // variation the companion papers describe; over-fetch to absorb
            // tombstoned entries, then trim.
            "nearest" => {
                let k = extra.as_int().unwrap_or(1).max(1) as usize;
                let (hits, stats) = self.tree.nearest(&key, k + self.deleted.len());
                let m = mlql_kernel::obs::metrics();
                m.mtree_node_visits_total.add(stats.nodes_visited);
                m.mtree_distance_computations_total
                    .add(stats.dist_computations);
                let tids: Vec<_> = hits
                    .into_iter()
                    .filter(|(kk, tid, _)| !self.deleted.contains(&(kk.clone(), *tid)))
                    .take(k)
                    .map(|(_, tid, _)| tid)
                    .collect();
                Ok(IndexSearch {
                    tids,
                    node_visits: stats.nodes_visited,
                    comparisons: stats.dist_computations,
                })
            }
            other => Err(Error::Execution(format!(
                "mtree does not support strategy {other:?}"
            ))),
        }
    }

    /// `"within"` probes partition at the root: each surviving root
    /// subtree becomes one task on the engine's worker pool, accumulating
    /// hits and [`QueryStats`] under a local mutex.  `run_all` blocks
    /// until every task finishes, so borrowing `self.tree` (behind the
    /// caller's per-index read guard) is sound.  Results and reported
    /// stats are bit-identical to the serial path (`tests` prove it).
    fn search_parallel(
        &self,
        strategy: &str,
        probe: &Datum,
        extra: &Datum,
        runner: &dyn TaskRunner,
    ) -> Result<IndexSearch> {
        if strategy != "within" {
            return self.search(strategy, probe, extra);
        }
        let key = self.key_of(probe)?;
        let radius = extra.as_int().unwrap_or(0).max(0) as f64;
        let (root_hits, subtrees, root_stats) = self.tree.range_partitioned(&key, radius);
        if subtrees.is_empty() {
            // Leaf root or everything pruned — nothing to fan out.
            return Ok(self.finish_within(root_hits, root_stats));
        }
        let acc = Mutex::new((root_hits, root_stats));
        let tree = &self.tree;
        let key_ref = &key;
        let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = subtrees
            .iter()
            .map(|sub| {
                let acc = &acc;
                Box::new(move || {
                    let (h, s) = tree.range_subtree(key_ref, radius, sub);
                    let mut g = acc.lock();
                    g.0.extend(h);
                    g.1.absorb(s);
                }) as Box<dyn FnOnce() + Send + '_>
            })
            .collect();
        runner.run_all(tasks);
        let (hits, stats) = acc.into_inner();
        Ok(self.finish_within(hits, stats))
    }

    fn pages(&self) -> u64 {
        self.tree.node_count() as u64
    }

    fn len(&self) -> usize {
        self.live
    }
}

/// The `"mtree"` access method, registered in the catalog the way the
/// paper registered the M-Tree through GiST.
pub struct MTreeAm {
    converters: Arc<ConverterRegistry>,
    policy: SplitPolicy,
}

impl MTreeAm {
    /// Random split — the paper's choice ("best index modification time").
    pub fn new(converters: Arc<ConverterRegistry>) -> Self {
        MTreeAm {
            converters,
            policy: SplitPolicy::Random,
        }
    }

    /// Alternative split policy (the mM_RAD ablation).
    pub fn with_policy(converters: Arc<ConverterRegistry>, policy: SplitPolicy) -> Self {
        MTreeAm { converters, policy }
    }
}

impl AccessMethod for MTreeAm {
    fn name(&self) -> &str {
        "mtree"
    }

    fn strategies(&self) -> &[&str] {
        &["within", "nearest"]
    }

    fn create(&self) -> Result<Box<dyn IndexInstance>> {
        Ok(Box::new(MTreeIndex::new(
            Arc::clone(&self.converters),
            self.policy,
        )))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::unitext_datum;
    use mlql_kernel::ExtTypeId;
    use mlql_unitext::{LanguageRegistry, UniText};

    fn setup() -> (Arc<LanguageRegistry>, Box<dyn IndexInstance>) {
        let langs = Arc::new(LanguageRegistry::new());
        let convs = Arc::new(ConverterRegistry::with_builtins(&langs));
        let am = MTreeAm::new(convs);
        (langs, am.create().unwrap())
    }

    fn ut(langs: &LanguageRegistry, text: &str, lang: &str) -> Datum {
        unitext_datum(ExtTypeId(0), &UniText::compose(text, langs.id_of(lang)))
    }

    fn tid(n: u32) -> TupleId {
        TupleId { page: n, slot: 0 }
    }

    #[test]
    fn within_search_finds_cross_script_homophones() {
        let (langs, mut idx) = setup();
        idx.insert(&ut(&langs, "Nehru", "English"), tid(1)).unwrap();
        idx.insert(&ut(&langs, "நேரு", "Tamil"), tid(2)).unwrap();
        idx.insert(&ut(&langs, "नेहरू", "Hindi"), tid(3)).unwrap();
        idx.insert(&ut(&langs, "Gandhi", "English"), tid(4))
            .unwrap();
        let probe = ut(&langs, "Nehru", "English");
        let r = idx.search("within", &probe, &Datum::Int(2)).unwrap();
        let mut pages: Vec<u32> = r.tids.iter().map(|t| t.page).collect();
        pages.sort_unstable();
        assert_eq!(pages, vec![1, 2, 3]);
    }

    #[test]
    fn tombstoned_entries_disappear() {
        let (langs, mut idx) = setup();
        let key = ut(&langs, "Nehru", "English");
        idx.insert(&key, tid(1)).unwrap();
        idx.insert(&key, tid(2)).unwrap();
        idx.delete(&key, tid(1)).unwrap();
        let r = idx.search("within", &key, &Datum::Int(0)).unwrap();
        assert_eq!(r.tids, vec![tid(2)]);
        assert_eq!(idx.len(), 1);
        // Re-insert resurrects.
        idx.insert(&key, tid(1)).unwrap();
        let r = idx.search("within", &key, &Datum::Int(0)).unwrap();
        assert_eq!(r.tids.len(), 2);
    }

    #[test]
    fn nearest_strategy_returns_k_best() {
        let (langs, mut idx) = setup();
        for (i, n) in ["Nehru", "Neru", "Nero", "Gandhi", "Patel"]
            .iter()
            .enumerate()
        {
            idx.insert(&ut(&langs, n, "English"), tid(i as u32))
                .unwrap();
        }
        let probe = ut(&langs, "Nehru", "English");
        let r = idx.search("nearest", &probe, &Datum::Int(3)).unwrap();
        let pages: Vec<u32> = r.tids.iter().map(|t| t.page).collect();
        assert_eq!(pages.len(), 3);
        assert_eq!(pages[0], 0, "exact match first");
        assert!(
            pages.contains(&1) && pages.contains(&2),
            "homophones next: {pages:?}"
        );
        // Tombstoned entries are skipped without shrinking the result.
        idx.delete(&ut(&langs, "Neru", "English"), tid(1)).unwrap();
        let r2 = idx.search("nearest", &probe, &Datum::Int(3)).unwrap();
        assert_eq!(r2.tids.len(), 3);
        assert!(!r2.tids.iter().any(|t| t.page == 1));
    }

    /// A runner that executes tasks inline — the serial reference
    /// implementation of the `TaskRunner` contract.
    struct InlineRunner;
    impl TaskRunner for InlineRunner {
        fn run_all(&self, tasks: Vec<Box<dyn FnOnce() + Send + '_>>) {
            for t in tasks {
                t();
            }
        }
    }

    #[test]
    fn parallel_within_matches_serial_exactly() {
        let (langs, mut idx) = setup();
        for i in 0..800 {
            idx.insert(&ut(&langs, &format!("name{i}"), "English"), tid(i))
                .unwrap();
        }
        // Tombstone a few so the parallel path also exercises filtering.
        idx.delete(&ut(&langs, "name10", "English"), tid(10))
            .unwrap();
        idx.delete(&ut(&langs, "name20", "English"), tid(20))
            .unwrap();
        for radius in [0i64, 1, 2, 4] {
            let probe = ut(&langs, "name250", "English");
            let serial = idx.search("within", &probe, &Datum::Int(radius)).unwrap();
            let par = idx
                .search_parallel("within", &probe, &Datum::Int(radius), &InlineRunner)
                .unwrap();
            let mut a: Vec<_> = serial.tids.iter().map(|t| (t.page, t.slot)).collect();
            let mut b: Vec<_> = par.tids.iter().map(|t| (t.page, t.slot)).collect();
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b, "radius={radius}");
            assert_eq!(serial.node_visits, par.node_visits, "radius={radius}");
            assert_eq!(serial.comparisons, par.comparisons, "radius={radius}");
        }
    }

    #[test]
    fn parallel_falls_back_to_serial_for_other_strategies() {
        let (langs, mut idx) = setup();
        for (i, n) in ["Nehru", "Neru", "Gandhi"].iter().enumerate() {
            idx.insert(&ut(&langs, n, "English"), tid(i as u32))
                .unwrap();
        }
        let probe = ut(&langs, "Nehru", "English");
        let r = idx
            .search_parallel("nearest", &probe, &Datum::Int(2), &InlineRunner)
            .unwrap();
        assert_eq!(r.tids.len(), 2);
    }

    #[test]
    fn unsupported_strategy_rejected() {
        let (langs, idx) = setup();
        let probe = ut(&langs, "x", "English");
        assert!(idx.search("eq", &probe, &Datum::Null).is_err());
    }

    #[test]
    fn search_reports_node_visits() {
        let (langs, mut idx) = setup();
        for i in 0..500 {
            idx.insert(&ut(&langs, &format!("name{i}"), "English"), tid(i))
                .unwrap();
        }
        let r = idx
            .search("within", &ut(&langs, "name250", "English"), &Datum::Int(1))
            .unwrap();
        assert!(r.node_visits >= 1);
        assert!(r.comparisons > 0);
        assert!(idx.pages() > 1);
    }
}
