//! SQL scalar functions of the Mural extension.
//!
//! * `unitext(text, language)` — the composing operator ⊕ (§3.1) as a SQL
//!   constructor; materializes the phoneme string immediately so query
//!   constants probe indexes without re-conversion.
//! * `text_of(unitext)` / `lang_of(unitext)` — the decomposing operator ⊗.
//! * `phoneme_of(unitext)` — the `transform` function of Figure 3.
//! * `editdistance(text, text)` — Levenshtein distance; the building block
//!   the outside-the-server PL implementations call per row (§5.3).

use crate::types::{unitext_datum, unitext_of_datum};
use mlql_kernel::catalog::FuncDef;
use mlql_kernel::{DataType, Datum, Error, ExtTypeId};
use mlql_phonetics::distance::edit_distance;
use mlql_phonetics::ConverterRegistry;
use mlql_unitext::{LanguageRegistry, UniText};
use std::sync::Arc;

/// Build all scalar functions for registration.
pub fn mural_functions(
    unitext_type: ExtTypeId,
    langs: Arc<LanguageRegistry>,
    converters: Arc<ConverterRegistry>,
) -> Vec<FuncDef> {
    let ctor_langs = Arc::clone(&langs);
    let ctor_convs = Arc::clone(&converters);
    let ph_convs = Arc::clone(&converters);
    let lang_langs = Arc::clone(&langs);

    vec![
        FuncDef {
            name: "unitext".into(),
            arity: 2,
            ret: Some(DataType::Ext(unitext_type)),
            eval: Arc::new(move |args, _| {
                let text = args[0]
                    .as_text()
                    .ok_or_else(|| Error::Execution("unitext: text expected".into()))?;
                let lang_name = args[1]
                    .as_text()
                    .ok_or_else(|| Error::Execution("unitext: language name expected".into()))?;
                let lang = ctor_langs
                    .lookup(lang_name)
                    .ok_or_else(|| Error::Execution(format!("unknown language {lang_name:?}")))?
                    .id;
                let mut v = UniText::compose(text, lang);
                ctor_convs.materialize(&mut v);
                Ok(unitext_datum(unitext_type, &v))
            }),
        },
        FuncDef {
            name: "text_of".into(),
            arity: 1,
            ret: Some(DataType::Text),
            eval: Arc::new(|args, _| {
                let v = unitext_of_datum(&args[0])?;
                Ok(Datum::text(v.text()))
            }),
        },
        FuncDef {
            name: "lang_of".into(),
            arity: 1,
            ret: Some(DataType::Text),
            eval: Arc::new(move |args, _| {
                let v = unitext_of_datum(&args[0])?;
                let name = lang_langs
                    .get(v.lang())
                    .map(|l| l.name.clone())
                    .unwrap_or_else(|| v.lang().to_string());
                Ok(Datum::text(name))
            }),
        },
        FuncDef {
            name: "phoneme_of".into(),
            arity: 1,
            ret: Some(DataType::Text),
            eval: Arc::new(move |args, _| {
                let v = unitext_of_datum(&args[0])?;
                let ph = ph_convs.phonemes_of(&v);
                // Phone bytes are ASCII by construction.
                Ok(Datum::text(String::from_utf8_lossy(ph.as_bytes())))
            }),
        },
        FuncDef {
            name: "editdistance".into(),
            arity: 2,
            ret: Some(DataType::Int),
            eval: Arc::new(|args, _| {
                let a = args[0]
                    .as_text()
                    .ok_or_else(|| Error::Execution("editdistance: text expected".into()))?;
                let b = args[1]
                    .as_text()
                    .ok_or_else(|| Error::Execution("editdistance: text expected".into()))?;
                Ok(Datum::Int(edit_distance(a.as_bytes(), b.as_bytes()) as i64))
            }),
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlql_kernel::catalog::SessionVars;

    fn setup() -> Vec<FuncDef> {
        let langs = Arc::new(LanguageRegistry::new());
        let convs = Arc::new(ConverterRegistry::with_builtins(&langs));
        mural_functions(ExtTypeId(0), langs, convs)
    }

    fn call(funcs: &[FuncDef], name: &str, args: &[Datum]) -> mlql_kernel::Result<Datum> {
        let f = funcs.iter().find(|f| f.name == name).unwrap();
        (f.eval)(args, &SessionVars::new())
    }

    #[test]
    fn constructor_materializes_phonemes() {
        let funcs = setup();
        let v = call(
            &funcs,
            "unitext",
            &[Datum::text("Nehru"), Datum::text("English")],
        )
        .unwrap();
        let ph = call(&funcs, "phoneme_of", std::slice::from_ref(&v)).unwrap();
        assert_eq!(ph.as_text(), Some("nehru"));
        let t = call(&funcs, "text_of", std::slice::from_ref(&v)).unwrap();
        assert_eq!(t.as_text(), Some("Nehru"));
        let l = call(&funcs, "lang_of", &[v]).unwrap();
        assert_eq!(l.as_text(), Some("English"));
    }

    #[test]
    fn constructor_rejects_unknown_language() {
        let funcs = setup();
        assert!(call(
            &funcs,
            "unitext",
            &[Datum::text("x"), Datum::text("Klingon")]
        )
        .is_err());
        assert!(call(&funcs, "unitext", &[Datum::Int(1), Datum::text("English")]).is_err());
    }

    #[test]
    fn editdistance_function() {
        let funcs = setup();
        let d = call(
            &funcs,
            "editdistance",
            &[Datum::text("kitten"), Datum::text("sitting")],
        )
        .unwrap();
        assert!(d.eq_sql(&Datum::Int(3)));
    }

    #[test]
    fn iso_codes_accepted_as_language() {
        let funcs = setup();
        let v = call(&funcs, "unitext", &[Datum::text("நேரு"), Datum::text("ta")]).unwrap();
        let l = call(&funcs, "lang_of", &[v]).unwrap();
        assert_eq!(l.as_text(), Some("Tamil"));
    }
}
