//! UniText ⇄ engine-bytes codec and type registration.
//!
//! Inside the engine a UniText value is an opaque extension payload:
//!
//! ```text
//! u16  lang id (LE)
//! u32  text length        | UTF-8 text bytes
//! u32  phoneme length     | phoneme bytes (empty until materialized)
//! ```
//!
//! The registered support functions give the payload its semantics:
//! `compare` orders by the **text component first** (so all ordinary text
//! operators behave per §3.2.1), `display` renders `⟨text, lang⟩`, and
//! `on_insert` materializes the phonemic string at insertion time (§4.2).

use mlql_kernel::catalog::ExtTypeDef;
use mlql_kernel::{Datum, Error, ExtTypeId, Result};
use mlql_phonetics::ConverterRegistry;
use mlql_unitext::{LangId, UniText};
use std::cmp::Ordering;
use std::sync::Arc;

/// The catalog type name for UniText.
pub const UNITEXT_TYPE_NAME: &str = "unitext";

/// Encode a `UniText` into engine bytes.
pub fn unitext_to_bytes(v: &UniText) -> Vec<u8> {
    let text = v.text().as_bytes();
    let ph = v.phoneme().map(str::as_bytes).unwrap_or(&[]);
    let mut out = Vec::with_capacity(2 + 4 + text.len() + 4 + ph.len());
    out.extend_from_slice(&v.lang().raw().to_le_bytes());
    out.extend_from_slice(&(text.len() as u32).to_le_bytes());
    out.extend_from_slice(text);
    out.extend_from_slice(&(ph.len() as u32).to_le_bytes());
    out.extend_from_slice(ph);
    out
}

/// Decode engine bytes into a `UniText`.
pub fn unitext_from_bytes(bytes: &[u8]) -> Result<UniText> {
    let corrupt = || Error::Storage("corrupt UniText payload".into());
    if bytes.len() < 6 {
        return Err(corrupt());
    }
    let lang = LangId(u16::from_le_bytes([bytes[0], bytes[1]]));
    let tlen = u32::from_le_bytes(bytes[2..6].try_into().expect("4 bytes")) as usize;
    if bytes.len() < 6 + tlen + 4 {
        return Err(corrupt());
    }
    let text = std::str::from_utf8(&bytes[6..6 + tlen]).map_err(|_| corrupt())?;
    let plen_off = 6 + tlen;
    let plen =
        u32::from_le_bytes(bytes[plen_off..plen_off + 4].try_into().expect("4 bytes")) as usize;
    if bytes.len() < plen_off + 4 + plen {
        return Err(corrupt());
    }
    let ph = &bytes[plen_off + 4..plen_off + 4 + plen];
    let mut v = UniText::compose(text, lang);
    if !ph.is_empty() {
        let ph = std::str::from_utf8(ph).map_err(|_| corrupt())?;
        v.set_phoneme(ph);
    }
    Ok(v)
}

/// Wrap a `UniText` as an engine `Datum` of the given registered type.
pub fn unitext_datum(ty: ExtTypeId, v: &UniText) -> Datum {
    Datum::ext(ty, unitext_to_bytes(v))
}

/// Borrow the materialized phoneme slice straight out of a UniText
/// payload, without decoding the value — `None` when the payload is
/// malformed or carries no phoneme cache.  This is the per-pair fast path
/// of ψ joins (§4.2's materialization exists precisely so the hot loop
/// never converts or copies).
pub fn phoneme_slice(bytes: &[u8]) -> Option<&[u8]> {
    if bytes.len() < 6 {
        return None;
    }
    let tlen = u32::from_le_bytes(bytes[2..6].try_into().ok()?) as usize;
    let plen_off = 6 + tlen;
    if bytes.len() < plen_off + 4 {
        return None;
    }
    let plen = u32::from_le_bytes(bytes[plen_off..plen_off + 4].try_into().ok()?) as usize;
    if bytes.len() < plen_off + 4 + plen || plen == 0 {
        return None;
    }
    Some(&bytes[plen_off + 4..plen_off + 4 + plen])
}

/// Extract a `UniText` from a `Datum`.  `Text` datums are accepted and
/// coerced to an untagged UniText (convenience for string literals in
/// queries; they carry no language and no phoneme cache).
pub fn unitext_of_datum(d: &Datum) -> Result<UniText> {
    match d {
        Datum::Ext { bytes, .. } => unitext_from_bytes(bytes),
        Datum::Text(s) => Ok(UniText::compose(s.as_ref(), LangId::UNKNOWN)),
        other => Err(Error::Execution(format!("expected unitext, got {other}"))),
    }
}

/// Compare two UniText payloads **by text component only** — §3.2.1: "all
/// text comparison operations may be applied to the UniText datatype; in
/// such cases, the operator functions solely on the Text component".
/// Values with the same text but different languages compare Equal here;
/// the ≐ identity operator (`UNITEQ` in SQL) distinguishes them.
pub fn compare_bytes(a: &[u8], b: &[u8]) -> Ordering {
    match (unitext_from_bytes(a), unitext_from_bytes(b)) {
        (Ok(x), Ok(y)) => x.text().cmp(y.text()),
        _ => a.cmp(b), // corrupt payloads order by raw bytes (stable)
    }
}

/// Build the `ExtTypeDef` for UniText.  `converters` powers the
/// insertion-time phoneme materialization.
pub fn unitext_type_def(converters: Arc<ConverterRegistry>) -> ExtTypeDef {
    ExtTypeDef {
        name: UNITEXT_TYPE_NAME.into(),
        display: Arc::new(|bytes| match unitext_from_bytes(bytes) {
            Ok(v) => format!("⟨{}, {}⟩", v.text(), v.lang()),
            Err(_) => "⟨corrupt unitext⟩".into(),
        }),
        compare: Arc::new(compare_bytes),
        compare_text: Some(Arc::new(|bytes, text| match unitext_from_bytes(bytes) {
            Ok(v) => v.text().cmp(text),
            Err(_) => std::cmp::Ordering::Greater,
        })),
        on_insert: Some(Arc::new(move |bytes| match unitext_from_bytes(bytes) {
            Ok(mut v) => {
                converters.materialize(&mut v);
                unitext_to_bytes(&v)
            }
            Err(_) => bytes.to_vec(),
        })),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlql_unitext::LanguageRegistry;

    fn reg() -> LanguageRegistry {
        LanguageRegistry::new()
    }

    #[test]
    fn codec_roundtrip() {
        let r = reg();
        let v =
            UniText::compose("Une Corde Témoin", r.id_of("French")).with_phoneme("ynkordtemwen");
        let bytes = unitext_to_bytes(&v);
        let back = unitext_from_bytes(&bytes).unwrap();
        assert_eq!(back.text(), "Une Corde Témoin");
        assert_eq!(back.lang(), r.id_of("French"));
        assert_eq!(back.phoneme(), Some("ynkordtemwen"));
    }

    #[test]
    fn codec_without_phoneme() {
        let r = reg();
        let v = UniText::compose("நேரு", r.id_of("Tamil"));
        let back = unitext_from_bytes(&unitext_to_bytes(&v)).unwrap();
        assert_eq!(back.text(), "நேரு");
        assert_eq!(back.phoneme(), None);
    }

    #[test]
    fn corrupt_payloads_rejected() {
        assert!(unitext_from_bytes(&[]).is_err());
        assert!(unitext_from_bytes(&[0, 0, 255, 255, 255, 255]).is_err());
        let r = reg();
        let mut good = unitext_to_bytes(&UniText::compose("x", r.id_of("English")));
        good.truncate(good.len() - 1);
        assert!(unitext_from_bytes(&good).is_err());
    }

    #[test]
    fn compare_is_text_first_and_ignores_phoneme() {
        let r = reg();
        let a = unitext_to_bytes(&UniText::compose("abc", r.id_of("Tamil")));
        let b = unitext_to_bytes(&UniText::compose("abd", r.id_of("English")));
        assert_eq!(compare_bytes(&a, &b), Ordering::Less);
        let c1 = unitext_to_bytes(&UniText::compose("same", r.id_of("English")));
        let c2 =
            unitext_to_bytes(&UniText::compose("same", r.id_of("English")).with_phoneme("seim"));
        assert_eq!(compare_bytes(&c1, &c2), Ordering::Equal);
        // Same text across languages is Equal for ordinary text operators.
        let d1 = unitext_to_bytes(&UniText::compose("same", r.id_of("Tamil")));
        assert_eq!(compare_bytes(&c1, &d1), Ordering::Equal);
    }

    #[test]
    fn on_insert_materializes_phonemes() {
        let r = reg();
        let convs = Arc::new(ConverterRegistry::with_builtins(&r));
        let def = unitext_type_def(convs);
        let raw = unitext_to_bytes(&UniText::compose("Nehru", r.id_of("English")));
        let cooked = (def.on_insert.as_ref().unwrap())(&raw);
        let v = unitext_from_bytes(&cooked).unwrap();
        assert_eq!(v.phoneme(), Some("nehru"));
    }

    #[test]
    fn text_datum_coerces() {
        let v = unitext_of_datum(&Datum::text("plain")).unwrap();
        assert_eq!(v.text(), "plain");
        assert_eq!(v.lang(), LangId::UNKNOWN);
        assert!(unitext_of_datum(&Datum::Int(3)).is_err());
    }
}
