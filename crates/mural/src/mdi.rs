//! The Metric-Distance-Index (MDI) of the outside-the-server baseline.
//!
//! Table 4's "Outside-Server / Index" row uses "the Metric-Distance-Index
//! (MDI) which can be implemented using the standard B-tree index" \[15\]:
//! every phoneme string is keyed by its edit distance to a fixed *anchor*
//! string, stored in an ordinary integer column with a B-Tree on it.  A
//! probe `q` at threshold `k` can, by the triangle inequality, only match
//! rows whose key lies in `[d(q,anchor) − k, d(q,anchor) + k]`, so the
//! outside-the-server code narrows its SQL with a B-Tree range predicate
//! and verifies candidates with the (interpreted) edit distance.

use mlql_phonetics::distance::edit_distance;

/// The anchor used by the benchmarks: a mid-length phoneme string chosen
/// from the data's alphabet.  Any fixed string works; pruning quality
/// varies mildly with the choice.
pub const DEFAULT_ANCHOR: &[u8] = b"nakara";

/// MDI key of a phoneme string: its distance to the anchor.
pub fn mdi_key(phoneme: &[u8], anchor: &[u8]) -> i64 {
    edit_distance(phoneme, anchor) as i64
}

/// The B-Tree range a probe must scan: `[key(q) − k, key(q) + k]`.
pub fn mdi_range(query_phoneme: &[u8], anchor: &[u8], k: usize) -> (i64, i64) {
    let q = mdi_key(query_phoneme, anchor);
    (q - k as i64, q + k as i64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlql_phonetics::distance::within_distance;

    #[test]
    fn range_never_prunes_true_matches() {
        // Triangle inequality: if d(x,q) <= k then |key(x) - key(q)| <= k.
        let strings: Vec<&[u8]> = vec![b"nehru", b"neru", b"nero", b"gandhi", b"patel", b""];
        for &q in &strings {
            for k in 0..4usize {
                let (lo, hi) = mdi_range(q, DEFAULT_ANCHOR, k);
                for &x in &strings {
                    if within_distance(x, q, k) {
                        let key = mdi_key(x, DEFAULT_ANCHOR);
                        assert!(
                            (lo..=hi).contains(&key),
                            "pruned a true match: q={q:?} x={x:?} k={k}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn range_width_is_2k_plus_1() {
        let (lo, hi) = mdi_range(b"nehru", DEFAULT_ANCHOR, 3);
        assert_eq!(hi - lo, 6);
    }

    #[test]
    fn keys_are_stable() {
        assert_eq!(
            mdi_key(b"nehru", DEFAULT_ANCHOR),
            mdi_key(b"nehru", DEFAULT_ANCHOR)
        );
        assert_eq!(mdi_key(DEFAULT_ANCHOR, DEFAULT_ANCHOR), 0);
    }
}
