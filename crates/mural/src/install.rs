//! Extension installation — the `CREATE EXTENSION mural` equivalent.
//!
//! One call wires everything the paper added to PostgreSQL into the
//! kernel's catalog: the UniText type with its support functions, the ψ
//! and Ω operators with cost models and selectivity estimators, the
//! M-Tree access method, the SQL constructor/decomposition functions, and
//! default session variables.  Nothing in the kernel changes — the point
//! of the Mural algebra being "organically added ... with little impact on
//! existing functionality" (§1).

use crate::functions::mural_functions;
use crate::lexequal::{lexequal_operator, DEFAULT_THRESHOLD, THRESHOLD_VAR};
use crate::mtree_am::MTreeAm;
use crate::semequal::{semequal_operator, SemState};
use crate::types::unitext_type_def;
use mlql_kernel::{Database, Datum, ExtTypeId, Result};
use mlql_phonetics::ConverterRegistry;
use mlql_taxonomy::{books_fragment, Taxonomy};
use mlql_unitext::LanguageRegistry;
use std::sync::Arc;

/// Handle to the installed extension's shared state.
pub struct Mural {
    /// Known languages.
    pub langs: Arc<LanguageRegistry>,
    /// Grapheme-to-phoneme converters.
    pub converters: Arc<ConverterRegistry>,
    /// The registered UniText type id.
    pub unitext_type: ExtTypeId,
    /// Ω's pinned taxonomy + closure cache.
    pub sem: Arc<SemState>,
}

impl Mural {
    /// k-nearest phonemic neighbours of `probe` through a table's M-Tree
    /// index — the "best match" flavour of LexEQUAL.  Returns full rows in
    /// ascending phonemic distance.
    pub fn nearest(
        &self,
        db: &Database,
        table: &str,
        index: &str,
        probe: &Datum,
        k: usize,
    ) -> Result<Vec<Vec<Datum>>> {
        let meta = db.catalog().table(table)?;
        let idx = db
            .catalog()
            .indexes_of(meta.id)
            .into_iter()
            .find(|i| i.name == index)
            .ok_or_else(|| mlql_kernel::Error::Catalog(format!("no index {index:?}")))?;
        let search = idx
            .instance
            .read()
            .search("nearest", probe, &Datum::Int(k as i64))?;
        // Index entries address versions; a fresh snapshot filters the
        // dead and in-flight ones (same policy as the kernel's IndexScan).
        let vis = db.engine().fresh_visibility();
        let mut out = Vec::with_capacity(search.tids.len());
        for tid in search.tids {
            if let Some(bytes) = meta.heap.get(db.pool(), tid)? {
                let (xmin, xmax, rest) = mlql_kernel::storage::split_version(&bytes)?;
                if !vis.sees(xmin, xmax) {
                    continue;
                }
                out.push(mlql_kernel::storage::decode_row(rest, meta.schema.len())?);
            }
        }
        Ok(out)
    }

    /// Convenience: build a UniText datum for direct (non-SQL) inserts.
    pub fn unitext(&self, text: &str, lang: &str) -> Result<Datum> {
        let id = self
            .langs
            .lookup(lang)
            .ok_or_else(|| mlql_kernel::Error::Binder(format!("unknown language {lang:?}")))?
            .id;
        let mut v = mlql_unitext::UniText::compose(text, id);
        self.converters.materialize(&mut v);
        Ok(crate::types::unitext_datum(self.unitext_type, &v))
    }
}

/// Install with the default worked-example taxonomy (the Books fragment of
/// Figures 1 and 4).
pub fn install(db: &mut Database) -> Result<Mural> {
    let langs = Arc::new(LanguageRegistry::new());
    let (taxonomy, _) = books_fragment(&langs);
    install_inner(db, langs, taxonomy)
}

/// Install with a caller-provided taxonomy (benches load the WordNet-scale
/// synthetic hierarchy).
pub fn install_with_taxonomy(db: &mut Database, taxonomy: Taxonomy) -> Result<Mural> {
    let langs = Arc::new(LanguageRegistry::new());
    install_inner(db, langs, taxonomy)
}

fn install_inner(
    db: &mut Database,
    langs: Arc<LanguageRegistry>,
    taxonomy: Taxonomy,
) -> Result<Mural> {
    let converters = Arc::new(ConverterRegistry::with_builtins(&langs));
    let mut catalog = db.catalog_mut();

    // 1. The UniText datatype (§3.1) with insertion-time phoneme
    //    materialization (§4.2).
    let unitext_type = catalog.register_type(unitext_type_def(Arc::clone(&converters)));

    // 2. The M-Tree access method through the GiST-equivalent hook (§4.2.1).
    catalog.register_access_method(Arc::new(MTreeAm::new(Arc::clone(&converters))));

    // 3. ψ with cost model, selectivity estimator and index pairing.
    catalog.register_operator(lexequal_operator(
        unitext_type,
        Arc::clone(&converters),
        Arc::clone(&langs),
    ));

    // 4. Ω over the pinned taxonomy (§4.3).
    let sem = SemState::new(Arc::new(taxonomy));
    catalog.register_operator(semequal_operator(
        unitext_type,
        Arc::clone(&sem),
        Arc::clone(&langs),
    ));

    // 4b. The ≐ identity operator (§3.2.1): true only when *both* the text
    //     and the language components are equal.
    catalog.register_operator(mlql_kernel::catalog::ExtOperator {
        name: "uniteq".into(),
        operand_type: mlql_kernel::DataType::Ext(unitext_type),
        eval: Arc::new(|l, r, _| {
            let (lv, rv) = (
                crate::types::unitext_of_datum(l)?,
                crate::types::unitext_of_datum(r)?,
            );
            Ok(Datum::Bool(lv.identical(&rv)))
        }),
        eval_batch: None,
        kind: mlql_kernel::catalog::OperatorKind {
            commutative: true,
            distributes_over_union: true,
        },
        per_tuple_cost: Arc::new(|_, _| 1.0),
        selectivity: Arc::new(|input| match (input.column, input.constant) {
            (Some(stats), Some(c)) => stats.eq_selectivity(c),
            _ => 0.005,
        }),
        index_strategy: None,
        index_extra: None,
        modifier_filter: None,
        index_scan_fraction: None,
        strategy_label: None,
    });

    // 5. SQL functions (⊕/⊗ constructors, transform, editdistance).
    for f in mural_functions(unitext_type, Arc::clone(&langs), Arc::clone(&converters)) {
        catalog.register_function(f);
    }

    // 6. Session defaults (the paper's system-table threshold, §4.2).
    drop(catalog); // release the catalog write lock before touching session state
    db.session_mut()
        .set(THRESHOLD_VAR, Datum::Int(DEFAULT_THRESHOLD));

    Ok(Mural {
        langs,
        converters,
        unitext_type,
        sem,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (Database, Mural) {
        let mut db = Database::new_in_memory();
        let mural = install(&mut db).unwrap();
        (db, mural)
    }

    #[test]
    fn figure2_lexequal_query() {
        let (mut db, _) = setup();
        db.execute("CREATE TABLE book (author UNITEXT, title UNITEXT, language TEXT)")
            .unwrap();
        for (author, title, lang) in [
            ("Nehru", "Glimpses of World History", "English"),
            ("नेहरू", "हिंदुस्तान की कहानी", "Hindi"),
            ("நேரு", "கடிதங்கள்", "Tamil"),
            ("Gandhi", "My Experiments with Truth", "English"),
        ] {
            db.execute(&format!(
                "INSERT INTO book VALUES (unitext('{author}', '{lang}'), unitext('{title}', '{lang}'), '{lang}')"
            ))
            .unwrap();
        }
        db.execute("SET lexequal.threshold = 2").unwrap();
        // Figure 2: SELECT ... WHERE Author LexEQUAL 'Nehru' IN English, Hindi, Tamil
        let rows = db
            .query(
                "SELECT language FROM book WHERE author LEXEQUAL unitext('Nehru','English') IN (English, Hindi, Tamil)",
            )
            .unwrap();
        let mut langs: Vec<String> = rows
            .iter()
            .map(|r| r[0].as_text().unwrap().to_string())
            .collect();
        langs.sort();
        assert_eq!(langs, vec!["English", "Hindi", "Tamil"]);
    }

    #[test]
    fn figure4_semequal_query() {
        let (mut db, _) = setup();
        db.execute("CREATE TABLE book (title TEXT, category UNITEXT)")
            .unwrap();
        for (title, cat, lang) in [
            ("Discovery of India", "History", "English"),
            (
                "The Debate on the English Revolution",
                "Historiography",
                "English",
            ),
            ("Wings of Fire", "Autobiography", "English"),
            ("Histoire de France", "Histoire", "French"),
            ("வரலாறு நூல்", "சரித்திரம்", "Tamil"),
            ("A Novel", "Fiction", "English"),
        ] {
            db.execute(&format!(
                "INSERT INTO book VALUES ('{title}', unitext('{cat}', '{lang}'))"
            ))
            .unwrap();
        }
        // Figure 4: Category SemEQUAL 'History' IN English, French, Tamil.
        let rows = db
            .query(
                "SELECT title FROM book WHERE category SEMEQUAL unitext('History','English') IN (English, French, Tamil)",
            )
            .unwrap();
        assert_eq!(
            rows.len(),
            5,
            "everything under History in the three languages"
        );
        assert!(!rows.iter().any(|r| r[0].as_text() == Some("A Novel")));
    }

    #[test]
    fn language_modifier_restricts_output_languages() {
        let (mut db, _) = setup();
        db.execute("CREATE TABLE book (author UNITEXT)").unwrap();
        for (author, lang) in [("Nehru", "English"), ("नेहरू", "Hindi"), ("நேரு", "Tamil")]
        {
            db.execute(&format!(
                "INSERT INTO book VALUES (unitext('{author}', '{lang}'))"
            ))
            .unwrap();
        }
        db.execute("SET lexequal.threshold = 2").unwrap();
        let only_tamil = db
            .query("SELECT author FROM book WHERE author LEXEQUAL unitext('Nehru','English') IN (Tamil)")
            .unwrap();
        assert_eq!(only_tamil.len(), 1);
        // No modifier: all languages match.
        let all = db
            .query("SELECT author FROM book WHERE author LEXEQUAL unitext('Nehru','English')")
            .unwrap();
        assert_eq!(all.len(), 3);
    }

    #[test]
    fn unitext_ordinary_text_operators() {
        let (mut db, _) = setup();
        db.execute("CREATE TABLE t (v UNITEXT)").unwrap();
        db.execute("INSERT INTO t VALUES (unitext('banana', 'English'))")
            .unwrap();
        db.execute("INSERT INTO t VALUES (unitext('apple', 'French'))")
            .unwrap();
        // §3.2.1: ordinary comparisons see only the text component.
        let rows = db.query("SELECT text_of(v) FROM t ORDER BY v").unwrap();
        assert_eq!(rows[0][0].as_text(), Some("apple"));
        let eq = db
            .query("SELECT count(*) FROM t WHERE v = unitext('apple', 'Tamil')")
            .unwrap();
        assert!(
            eq[0][0].eq_sql(&Datum::Int(1)),
            "text-only equality crosses languages"
        );
    }

    #[test]
    fn mtree_index_serves_lexequal_probe() {
        let (mut db, _) = setup();
        db.execute("CREATE TABLE names (n UNITEXT)").unwrap();
        for i in 0..300 {
            db.execute(&format!(
                "INSERT INTO names VALUES (unitext('person{i}', 'English'))"
            ))
            .unwrap();
        }
        db.execute("INSERT INTO names VALUES (unitext('Nehru', 'English'))")
            .unwrap();
        db.execute("CREATE INDEX names_mt ON names (n) USING mtree")
            .unwrap();
        db.execute("ANALYZE names").unwrap();
        db.execute("SET lexequal.threshold = 1").unwrap();
        // Force the index path to prove it works end to end.
        db.execute("SET enable_seqscan = 0").unwrap();
        let r = db
            .execute("SELECT count(*) FROM names WHERE n LEXEQUAL unitext('Neru','English')")
            .unwrap();
        assert!(r.rows[0][0].eq_sql(&Datum::Int(1)));
        assert!(r.explain.unwrap().contains("Index Scan"));
        assert!(r.stats.index_node_visits > 0);
    }

    #[test]
    fn nearest_api_orders_by_phonemic_distance() {
        let (mut db, mural) = setup();
        db.execute("CREATE TABLE names (n UNITEXT)").unwrap();
        for name in ["Nehru", "Neru", "Nero", "Gandhi", "Patel", "Bose"] {
            db.execute(&format!(
                "INSERT INTO names VALUES (unitext('{name}','English'))"
            ))
            .unwrap();
        }
        db.execute("CREATE INDEX names_mt ON names (n) USING mtree")
            .unwrap();
        let probe = mural.unitext("Nehru", "English").unwrap();
        let rows = mural.nearest(&db, "names", "names_mt", &probe, 3).unwrap();
        assert_eq!(rows.len(), 3);
        let texts: Vec<String> = rows
            .iter()
            .map(|r| {
                crate::types::unitext_of_datum(&r[0])
                    .unwrap()
                    .text()
                    .to_string()
            })
            .collect();
        assert_eq!(texts[0], "Nehru");
        assert!(texts.contains(&"Neru".to_string()));
    }

    #[test]
    fn phoneme_materialized_on_insert() {
        let (mut db, mural) = setup();
        db.execute("CREATE TABLE t (v UNITEXT)").unwrap();
        db.execute("INSERT INTO t VALUES (unitext('Nehru', 'English'))")
            .unwrap();
        let rows = db.query("SELECT phoneme_of(v) FROM t").unwrap();
        assert_eq!(rows[0][0].as_text(), Some("nehru"));
        let _ = mural;
    }

    #[test]
    fn direct_api_unitext_construction() {
        let (mut db, mural) = setup();
        db.execute("CREATE TABLE t (v UNITEXT)").unwrap();
        let d = mural.unitext("நேரு", "Tamil").unwrap();
        db.insert_row("t", vec![d]).unwrap();
        let rows = db.query("SELECT lang_of(v) FROM t").unwrap();
        assert_eq!(rows[0][0].as_text(), Some("Tamil"));
        assert!(mural.unitext("x", "Klingon").is_err());
    }

    #[test]
    fn existing_functionality_unaffected() {
        // The §5.1 sanity claim at unit scale: a plain relational workload
        // runs identically with the extension installed.
        let mut plain = Database::new_in_memory();
        let mut extended = Database::new_in_memory();
        let _ = install(&mut extended).unwrap();
        for db in [&mut plain, &mut extended] {
            db.execute("CREATE TABLE t (id INT, v TEXT)").unwrap();
            for i in 0..50 {
                db.execute(&format!("INSERT INTO t VALUES ({i}, 'v{i}')"))
                    .unwrap();
            }
        }
        let a = plain.query("SELECT count(*) FROM t WHERE id < 25").unwrap();
        let b = extended
            .query("SELECT count(*) FROM t WHERE id < 25")
            .unwrap();
        assert!(a[0][0].eq_sql(&b[0][0]));
    }
}
