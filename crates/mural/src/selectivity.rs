//! Selectivity estimators for ψ and Ω (§3.4 of the paper).

use mlql_kernel::catalog::ColumnStats;
use mlql_phonetics::distance::within_distance;

/// Fraction of the *non-MCV* remainder assumed to match per unit of edit
/// threshold — the paper's "fraction corresponding to the threshold factor
/// (based on the empirical study of approximate matching presented in
/// \[15\])" used to inflate the MCV-based estimate (§3.4.1).
pub const PSI_TAIL_MATCH_PER_K: f64 = 0.012;

/// ψ scan selectivity (§3.4.1): probe the ten most-frequent values of the
/// phonemic attribute against the query phoneme at the session threshold,
/// then inflate by the threshold factor for the non-frequent remainder.
///
/// `mcv_phonemes` pairs each MCV's *phoneme bytes* with its frequency
/// fraction; `query` is the probe's phoneme bytes.
pub fn psi_scan_selectivity(mcv_phonemes: &[(Vec<u8>, f64)], query: &[u8], k: usize) -> f64 {
    let matched_mass: f64 = mcv_phonemes
        .iter()
        .filter(|(ph, _)| within_distance(ph, query, k))
        .map(|(_, f)| f)
        .sum();
    let mcv_mass: f64 = mcv_phonemes.iter().map(|(_, f)| f).sum();
    let tail = (1.0 - mcv_mass).max(0.0) * (PSI_TAIL_MATCH_PER_K * k as f64).min(1.0);
    (matched_mass + tail).clamp(0.0, 1.0)
}

/// ψ scan selectivity fallback when the column has no statistics.
pub fn psi_default_selectivity(k: usize) -> f64 {
    (0.002 * (k as f64 + 1.0)).clamp(0.0, 1.0)
}

/// ψ join selectivity: the exact-match equi-join estimate
/// `1/max(nd_l, nd_r)` inflated by the threshold factor — each extra unit
/// of threshold admits roughly a band of near-misses around each exact
/// match.
pub fn psi_join_selectivity(
    left: Option<&ColumnStats>,
    right: Option<&ColumnStats>,
    k: usize,
) -> f64 {
    let nd = match (left, right) {
        (Some(l), Some(r)) => l.n_distinct.max(r.n_distinct).max(1.0),
        (Some(s), None) | (None, Some(s)) => s.n_distinct.max(1.0),
        (None, None) => 200.0,
    };
    ((1.0 + 2.0 * k as f64) / nd).clamp(0.0, 1.0)
}

/// Ω scan selectivity (§3.4.2): the probability that a category value lies
/// in the transitive closure of the query concept.  With a materialized
/// closure the estimate is exact — `|closure| / N_TH`; otherwise the
/// paper's structural heuristic from the hierarchy's average fan-out `f`
/// and height `h`: an average closure covers about `f^(h/2)` synsets.
pub fn omega_scan_selectivity(
    exact_closure_size: Option<usize>,
    taxonomy_size: usize,
    avg_fanout: f64,
    height: usize,
) -> f64 {
    if taxonomy_size == 0 {
        return 0.0;
    }
    let closure = match exact_closure_size {
        Some(c) => c as f64,
        None => avg_fanout.max(1.0).powf(height as f64 / 2.0),
    };
    // Floor at one synset's worth of selectivity: a zero/unknown closure
    // must never collapse the estimate to exactly 0 rows, which yields
    // `rows=0` plans and degenerate cost ties downstream.
    (closure / taxonomy_size as f64).clamp(1.0 / taxonomy_size as f64, 1.0)
}

/// Ω join selectivity (§3.4.2): probability over random (LHS, RHS) pairs
/// that LHS ∈ TC(RHS) — the average closure fraction.
pub fn omega_join_selectivity(
    avg_closure_size: Option<f64>,
    taxonomy_size: usize,
    avg_fanout: f64,
    height: usize,
) -> f64 {
    if taxonomy_size == 0 {
        return 0.0;
    }
    let closure = avg_closure_size.unwrap_or_else(|| avg_fanout.max(1.0).powf(height as f64 / 2.0));
    // Same floor as the scan estimator: never exactly zero on a
    // non-empty taxonomy.
    (closure / taxonomy_size as f64).clamp(1.0 / taxonomy_size as f64, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn psi_mcv_hit_dominates() {
        // "nehru" is 30% of the column; a threshold-1 probe of "neru"
        // should estimate at least that mass.
        let mcvs = vec![
            (b"nehru".to_vec(), 0.30),
            (b"gandhi".to_vec(), 0.20),
            (b"patel".to_vec(), 0.10),
        ];
        let sel = psi_scan_selectivity(&mcvs, b"neru", 1);
        assert!(sel >= 0.30, "got {sel}");
        assert!(sel < 0.35);
        // At threshold 0 nothing matches; only the tail remains (zero at k=0).
        let sel0 = psi_scan_selectivity(&mcvs, b"neru", 0);
        assert_eq!(sel0, 0.0);
    }

    #[test]
    fn psi_tail_inflation_grows_with_threshold() {
        let mcvs = vec![(b"aaaa".to_vec(), 0.05)];
        let s1 = psi_scan_selectivity(&mcvs, b"zzzz", 1);
        let s3 = psi_scan_selectivity(&mcvs, b"zzzz", 3);
        assert!(s3 > s1);
        assert!(s3 < 0.10, "tail inflation stays modest: {s3}");
    }

    #[test]
    fn psi_selectivity_clamped() {
        let mcvs = vec![(b"x".to_vec(), 0.9), (b"y".to_vec(), 0.3)]; // corrupt mass > 1
        let sel = psi_scan_selectivity(&mcvs, b"x", 0);
        assert!((0.0..=1.0).contains(&sel));
    }

    #[test]
    fn omega_exact_beats_heuristic() {
        let exact = omega_scan_selectivity(Some(500), 100_000, 3.5, 16);
        assert!((exact - 0.005).abs() < 1e-9);
        let heur = omega_scan_selectivity(None, 100_000, 3.5, 16);
        assert!(heur > 0.0 && heur < 1.0);
    }

    #[test]
    fn omega_join_uses_average_closure() {
        let s = omega_join_selectivity(Some(1000.0), 100_000, 3.5, 16);
        assert!((s - 0.01).abs() < 1e-9);
        assert_eq!(omega_join_selectivity(None, 0, 3.5, 16), 0.0);
    }

    #[test]
    fn omega_selectivity_floors_at_one_synset() {
        // A (corrupt or unknown) zero-size closure must not produce a
        // zero estimate on a non-empty taxonomy.
        let floor = 1.0 / 1000.0;
        assert_eq!(omega_scan_selectivity(Some(0), 1000, 3.5, 16), floor);
        assert_eq!(omega_join_selectivity(Some(0.0), 1000, 3.5, 16), floor);
        // Degenerate structure stats can't zero it either.
        assert!(omega_scan_selectivity(None, 1000, 0.0, 0) >= floor);
        // The empty taxonomy stays the one legitimate zero.
        assert_eq!(omega_scan_selectivity(None, 0, 3.5, 16), 0.0);
    }

    #[test]
    fn psi_join_grows_with_threshold() {
        let s0 = psi_join_selectivity(None, None, 0);
        let s3 = psi_join_selectivity(None, None, 3);
        assert!(s3 > s0);
    }
}
