//! Outside-the-server implementations of ψ and Ω (§5.3, §5.4 baselines).
//!
//! These are the PL programs a user would have written against a stock
//! engine with no multilingual support: row-at-a-time cursors through the
//! SPI, per-row interpreted `editdistance` calls across the function-
//! manager boundary, dynamic SQL for the index-assisted variants, and
//! level-by-level SQL expansion for transitive closures ("recursive SQL
//! constructs").  They are *correct* — integration tests check they return
//! exactly what the in-kernel operators return — just architecturally slow,
//! which is the paper's Table 4 / Figure 8 comparison.

use mlql_kernel::expr::CmpOp;
use mlql_kernel::pl::build::*;
use mlql_kernel::pl::{PlFunction, PlStmt};

/// ψ scan, no index: cursor over the whole table, interpreted edit
/// distance per row.
///
/// Parameters: `q` (query phoneme string, TEXT), `k` (threshold, INT).
/// The table must expose `text_col` and its materialized phoneme string in
/// `phoneme_col`.  Returns matching `text_col` values.
pub fn lexequal_scan_fn(table: &str, text_col: &str, phoneme_col: &str) -> PlFunction {
    PlFunction {
        name: format!("lexequal_scan_{table}"),
        params: vec!["q".into(), "k".into()],
        body: vec![PlStmt::ForQuery {
            var: "r".into(),
            sql: text(&format!("SELECT {text_col}, {phoneme_col} FROM {table}")),
            body: vec![PlStmt::If {
                cond: cmp(
                    CmpOp::Le,
                    call("editdistance", vec![field("r", phoneme_col), var("q")]),
                    var("k"),
                ),
                then_branch: vec![PlStmt::ReturnNext(vec![field("r", text_col)])],
                else_branch: vec![],
            }],
        }],
    }
}

/// ψ scan with the MDI (B-Tree) pre-filter: dynamic SQL narrows the cursor
/// to the `[qmdi − k, qmdi + k]` key range (which the engine serves with
/// its B-Tree), then the interpreted edit distance verifies candidates.
///
/// Parameters: `q` (query phoneme), `k` (threshold), `qmdi` (the query's
/// MDI key, precomputed by the caller with [`crate::mdi::mdi_key`]).
pub fn lexequal_scan_mdi_fn(
    table: &str,
    text_col: &str,
    phoneme_col: &str,
    mdi_col: &str,
) -> PlFunction {
    PlFunction {
        name: format!("lexequal_scan_mdi_{table}"),
        params: vec!["q".into(), "k".into(), "qmdi".into()],
        body: vec![
            PlStmt::Assign("lo".into(), PlExprSub(var("qmdi"), var("k"))),
            PlStmt::Assign("hi".into(), PlExprAdd(var("qmdi"), var("k"))),
            PlStmt::ForQuery {
                var: "r".into(),
                sql: concat(vec![
                    text(&format!(
                        "SELECT {text_col}, {phoneme_col} FROM {table} WHERE {mdi_col} >= "
                    )),
                    var("lo"),
                    text(&format!(" AND {mdi_col} <= ")),
                    var("hi"),
                ]),
                body: vec![PlStmt::If {
                    cond: cmp(
                        CmpOp::Le,
                        call("editdistance", vec![field("r", phoneme_col), var("q")]),
                        var("k"),
                    ),
                    then_branch: vec![PlStmt::ReturnNext(vec![field("r", text_col)])],
                    else_branch: vec![],
                }],
            },
        ],
    }
}

/// ψ join, no index: nested cursors — one SPI statement over the outer
/// table, then one SPI statement over the inner table *per outer row*.
/// Returns matching `(outer_text, inner_text)` pairs.
pub fn lexequal_join_fn(
    outer_table: &str,
    outer_text: &str,
    outer_ph: &str,
    inner_table: &str,
    inner_text: &str,
    inner_ph: &str,
) -> PlFunction {
    PlFunction {
        name: format!("lexequal_join_{outer_table}_{inner_table}"),
        params: vec!["k".into()],
        body: vec![PlStmt::ForQuery {
            var: "o".into(),
            sql: text(&format!(
                "SELECT {outer_text}, {outer_ph} FROM {outer_table}"
            )),
            body: vec![PlStmt::ForQuery {
                var: "i".into(),
                sql: text(&format!(
                    "SELECT {inner_text}, {inner_ph} FROM {inner_table}"
                )),
                body: vec![PlStmt::If {
                    cond: cmp(
                        CmpOp::Le,
                        call(
                            "editdistance",
                            vec![field("o", outer_ph), field("i", inner_ph)],
                        ),
                        var("k"),
                    ),
                    then_branch: vec![PlStmt::ReturnNext(vec![
                        field("o", outer_text),
                        field("i", inner_text),
                    ])],
                    else_branch: vec![],
                }],
            }],
        }],
    }
}

/// ψ join with the MDI pre-filter on the inner table: the inner cursor per
/// outer row is narrowed to the MDI key band around the outer row's key.
#[allow(clippy::too_many_arguments)]
pub fn lexequal_join_mdi_fn(
    outer_table: &str,
    outer_text: &str,
    outer_ph: &str,
    outer_mdi: &str,
    inner_table: &str,
    inner_text: &str,
    inner_ph: &str,
    inner_mdi: &str,
) -> PlFunction {
    PlFunction {
        name: format!("lexequal_join_mdi_{outer_table}_{inner_table}"),
        params: vec!["k".into()],
        body: vec![PlStmt::ForQuery {
            var: "o".into(),
            sql: text(&format!(
                "SELECT {outer_text}, {outer_ph}, {outer_mdi} FROM {outer_table}"
            )),
            body: vec![
                PlStmt::Assign("lo".into(), PlExprSub(field("o", outer_mdi), var("k"))),
                PlStmt::Assign("hi".into(), PlExprAdd(field("o", outer_mdi), var("k"))),
                PlStmt::ForQuery {
                    var: "i".into(),
                    sql: concat(vec![
                        text(&format!(
                            "SELECT {inner_text}, {inner_ph} FROM {inner_table} WHERE {inner_mdi} >= "
                        )),
                        var("lo"),
                        text(&format!(" AND {inner_mdi} <= ")),
                        var("hi"),
                    ]),
                    body: vec![PlStmt::If {
                        cond: cmp(
                            CmpOp::Le,
                            call("editdistance", vec![field("o", outer_ph), field("i", inner_ph)]),
                            var("k"),
                        ),
                        then_branch: vec![PlStmt::ReturnNext(vec![
                            field("o", outer_text),
                            field("i", inner_text),
                        ])],
                        else_branch: vec![],
                    }],
                },
            ],
        }],
    }
}

/// Ω transitive closure through SQL — the "recursive SQL constructs" path
/// of §5.4.  The closure is accumulated in a scratch table
/// (`scratch(id INT, done INT)`, created/emptied by the caller) by
/// frontier expansion: repeatedly pick an unexpanded node, mark it done,
/// and insert its children (one `SELECT` per node against the taxonomy's
/// edge table `edges(child INT, parent INT)`; a B+Tree on `parent` is what
/// the "B+Tree index" curve of Figure 8 adds).
///
/// Parameters: `root` (synset id, INT).  Returns one row per closure
/// member.
pub fn semequal_closure_fn(edges_table: &str, scratch_table: &str) -> PlFunction {
    PlFunction {
        name: format!("semequal_closure_{edges_table}"),
        params: vec!["root".into()],
        body: vec![
            // Seed the frontier.
            PlStmt::Perform(concat(vec![
                text(&format!("INSERT INTO {scratch_table} VALUES (")),
                var("root"),
                text(", 0)"),
            ])),
            PlStmt::Assign("more".into(), int(1)),
            PlStmt::While {
                cond: cmp(CmpOp::Eq, var("more"), int(1)),
                body: vec![
                    PlStmt::Assign("more".into(), int(0)),
                    // Pick one unexpanded node.
                    PlStmt::ForQuery {
                        var: "n".into(),
                        sql: text(&format!(
                            "SELECT id FROM {scratch_table} WHERE done = 0 LIMIT 1"
                        )),
                        body: vec![
                            PlStmt::Assign("more".into(), int(1)),
                            // Mark done: delete the frontier row, insert a done row.
                            PlStmt::Perform(concat(vec![
                                text(&format!("DELETE FROM {scratch_table} WHERE id = ")),
                                field("n", "id"),
                                text(" AND done = 0"),
                            ])),
                            PlStmt::Perform(concat(vec![
                                text(&format!("INSERT INTO {scratch_table} VALUES (")),
                                field("n", "id"),
                                text(", 1)"),
                            ])),
                            // Expand children (the indexed statement).
                            PlStmt::ForQuery {
                                var: "c".into(),
                                sql: concat(vec![
                                    text(&format!(
                                        "SELECT child FROM {edges_table} WHERE parent = "
                                    )),
                                    field("n", "id"),
                                ]),
                                body: vec![
                                    // Deduplicate: only enqueue unseen nodes.
                                    PlStmt::Assign("seen".into(), int(0)),
                                    PlStmt::ForQuery {
                                        var: "s".into(),
                                        sql: concat(vec![
                                            text(&format!(
                                                "SELECT count(*) AS cnt FROM {scratch_table} WHERE id = "
                                            )),
                                            field("c", "child"),
                                        ]),
                                        body: vec![PlStmt::Assign(
                                            "seen".into(),
                                            field("s", "cnt"),
                                        )],
                                    },
                                    PlStmt::If {
                                        cond: cmp(CmpOp::Eq, var("seen"), int(0)),
                                        then_branch: vec![PlStmt::Perform(concat(vec![
                                            text(&format!(
                                                "INSERT INTO {scratch_table} VALUES ("
                                            )),
                                            field("c", "child"),
                                            text(", 0)"),
                                        ]))],
                                        else_branch: vec![],
                                    },
                                ],
                            },
                        ],
                    },
                ],
            },
            // Emit the closure.
            PlStmt::ForQuery {
                var: "m".into(),
                sql: text(&format!("SELECT id FROM {scratch_table}")),
                body: vec![PlStmt::ReturnNext(vec![field("m", "id")])],
            },
        ],
    }
}

/// Ω transitive closure through *set-based* SQL — the "SQL scripts"
/// flavour of §5.3/§5.4: one `INSERT INTO ... SELECT` join per hierarchy
/// level instead of one statement per node.  Far fewer SPI round-trips
/// than [`semequal_closure_fn`], still architecturally outside the server.
///
/// Uses two scratch tables the caller creates and empties:
/// `closure(id INT)` and `frontier(id INT)`.  Correct for tree-shaped
/// hierarchies (each node has one parent, so no level re-visits a node);
/// DAG inputs would need an anti-join the dialect doesn't have, which is
/// exactly the kind of limitation that pushed the paper toward the
/// in-kernel implementation.
pub fn semequal_closure_setsql_fn(
    edges_table: &str,
    closure_table: &str,
    frontier_table: &str,
    frontier_next_table: &str,
) -> PlFunction {
    PlFunction {
        name: format!("semequal_closure_set_{edges_table}"),
        params: vec!["root".into()],
        body: vec![
            PlStmt::Perform(concat(vec![
                text(&format!("INSERT INTO {closure_table} VALUES (")),
                var("root"),
                text(")"),
            ])),
            PlStmt::Perform(concat(vec![
                text(&format!("INSERT INTO {frontier_table} VALUES (")),
                var("root"),
                text(")"),
            ])),
            PlStmt::Assign("grew".into(), int(1)),
            PlStmt::While {
                cond: cmp(CmpOp::Eq, var("grew"), int(1)),
                body: vec![
                    // next level = children of the current frontier — one
                    // set-based join per level.
                    PlStmt::Perform(text(&format!(
                        "INSERT INTO {frontier_next_table} SELECT e.child FROM {edges_table} e, {frontier_table} f WHERE e.parent = f.id"
                    ))),
                    // Swap the frontier buffers and fold into the closure.
                    PlStmt::Perform(text(&format!("DELETE FROM {frontier_table}"))),
                    PlStmt::Perform(text(&format!(
                        "INSERT INTO {frontier_table} SELECT id FROM {frontier_next_table}"
                    ))),
                    PlStmt::Perform(text(&format!("DELETE FROM {frontier_next_table}"))),
                    PlStmt::Perform(text(&format!(
                        "INSERT INTO {closure_table} SELECT id FROM {frontier_table}"
                    ))),
                    // Terminate when the level was empty.
                    PlStmt::Assign("n".into(), int(0)),
                    PlStmt::ForQuery {
                        var: "c".into(),
                        sql: text(&format!("SELECT count(*) AS n FROM {frontier_table}")),
                        body: vec![PlStmt::Assign("n".into(), field("c", "n"))],
                    },
                    PlStmt::If {
                        cond: cmp(CmpOp::Gt, var("n"), int(0)),
                        then_branch: vec![PlStmt::Assign("grew".into(), int(1))],
                        else_branch: vec![PlStmt::Assign("grew".into(), int(0))],
                    },
                ],
            },
            PlStmt::ForQuery {
                var: "m".into(),
                sql: text(&format!("SELECT id FROM {closure_table}")),
                body: vec![PlStmt::ReturnNext(vec![field("m", "id")])],
            },
        ],
    }
}

/// The interpreted Levenshtein UDF — the heart of the outside-the-server
/// baseline's cost profile.
///
/// The paper's outside implementation wrote `editdistance` in PL/SQL;
/// every DP cell is an interpreted statement over boxed values, which is
/// why Table 4's outside rows are orders of magnitude above the core's
/// native C edit distance.  Register this with
/// [`mlql_kernel::pl::PlRuntime::register_function`]: the local name
/// `editdistance` then *shadows* the native catalog function, so the same
/// scan/join PL programs run fully outside-the-server.
pub fn editdistance_pl_fn() -> PlFunction {
    use mlql_kernel::expr::ArithOp;
    use mlql_kernel::pl::PlExpr;
    let add = |l: PlExpr, r: PlExpr| PlExpr::Arith(ArithOp::Add, Box::new(l), Box::new(r));
    let strlen = |e: PlExpr| PlExpr::StrLen(Box::new(e));
    let charat = |e: PlExpr, i: PlExpr| PlExpr::CharAt(Box::new(e), Box::new(i));
    let get = |name: &str, i: PlExpr| PlExpr::ListGet(name.into(), Box::new(i));

    PlFunction {
        name: "editdistance".into(),
        params: vec!["a".into(), "b".into()],
        body: vec![
            PlStmt::Assign("n".into(), strlen(var("a"))),
            PlStmt::Assign("m".into(), strlen(var("b"))),
            // prev := [0, 1, ..., m]
            PlStmt::ListNew("prev".into()),
            PlStmt::Assign("j".into(), int(0)),
            PlStmt::While {
                cond: cmp(CmpOp::Le, var("j"), var("m")),
                body: vec![
                    PlStmt::ListPush("prev".into(), var("j")),
                    PlStmt::Assign("j".into(), add(var("j"), int(1))),
                ],
            },
            // row loop
            PlStmt::Assign("i".into(), int(0)),
            PlStmt::While {
                cond: cmp(CmpOp::Lt, var("i"), var("n")),
                body: vec![
                    PlStmt::ListNew("curr".into()),
                    PlStmt::ListPush("curr".into(), add(var("i"), int(1))),
                    PlStmt::Assign("j".into(), int(0)),
                    PlStmt::While {
                        cond: cmp(CmpOp::Lt, var("j"), var("m")),
                        body: vec![
                            PlStmt::If {
                                cond: cmp(
                                    CmpOp::Eq,
                                    charat(var("a"), var("i")),
                                    charat(var("b"), var("j")),
                                ),
                                then_branch: vec![PlStmt::Assign("cost".into(), int(0))],
                                else_branch: vec![PlStmt::Assign("cost".into(), int(1))],
                            },
                            PlStmt::Assign("best".into(), add(get("prev", var("j")), var("cost"))),
                            PlStmt::Assign(
                                "up".into(),
                                add(get("prev", add(var("j"), int(1))), int(1)),
                            ),
                            PlStmt::If {
                                cond: cmp(CmpOp::Lt, var("up"), var("best")),
                                then_branch: vec![PlStmt::Assign("best".into(), var("up"))],
                                else_branch: vec![],
                            },
                            PlStmt::Assign("left".into(), add(get("curr", var("j")), int(1))),
                            PlStmt::If {
                                cond: cmp(CmpOp::Lt, var("left"), var("best")),
                                then_branch: vec![PlStmt::Assign("best".into(), var("left"))],
                                else_branch: vec![],
                            },
                            PlStmt::ListPush("curr".into(), var("best")),
                            PlStmt::Assign("j".into(), add(var("j"), int(1))),
                        ],
                    },
                    PlStmt::ListCopy("prev".into(), "curr".into()),
                    PlStmt::Assign("i".into(), add(var("i"), int(1))),
                ],
            },
            PlStmt::ReturnNext(vec![get("prev", var("m"))]),
        ],
    }
}

// Small arithmetic helpers (the PL builder module only exposes generic
// constructors; these keep the programs above readable).
#[allow(non_snake_case)]
fn PlExprAdd(l: mlql_kernel::pl::PlExpr, r: mlql_kernel::pl::PlExpr) -> mlql_kernel::pl::PlExpr {
    mlql_kernel::pl::PlExpr::Arith(mlql_kernel::expr::ArithOp::Add, Box::new(l), Box::new(r))
}

#[allow(non_snake_case)]
fn PlExprSub(l: mlql_kernel::pl::PlExpr, r: mlql_kernel::pl::PlExpr) -> mlql_kernel::pl::PlExpr {
    mlql_kernel::pl::PlExpr::Arith(mlql_kernel::expr::ArithOp::Sub, Box::new(l), Box::new(r))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::install::install;
    use mlql_kernel::pl::PlRuntime;
    use mlql_kernel::{Database, Datum};

    /// Build a small names table with materialized phoneme and MDI columns,
    /// the way an outside-the-server deployment would.
    fn names_db() -> Database {
        let mut db = Database::new_in_memory();
        let _ = install(&mut db).unwrap();
        db.execute("CREATE TABLE names (name TEXT, ph TEXT, mdi INT)")
            .unwrap();
        for n in ["nehru", "neru", "nero", "gandhi", "patel", "bose", "naidu"] {
            let mdi = crate::mdi::mdi_key(n.as_bytes(), crate::mdi::DEFAULT_ANCHOR);
            // Phoneme string == romanized name here: these are already
            // phonemic spellings, which keeps expectations obvious.
            db.execute(&format!("INSERT INTO names VALUES ('{n}', '{n}', {mdi})"))
                .unwrap();
        }
        db
    }

    #[test]
    fn outside_scan_matches_reference() {
        let mut db = names_db();
        let f = lexequal_scan_fn("names", "name", "ph");
        let mut rt = PlRuntime::new(&mut db);
        let rows = rt.call(&f, &[Datum::text("nehru"), Datum::Int(1)]).unwrap();
        let mut got: Vec<&str> = rows.iter().map(|r| r[0].as_text().unwrap()).collect();
        got.sort_unstable();
        assert_eq!(got, vec!["nehru", "neru"]);
        assert!(rt.stats().spi_statements >= 1);
        assert!(rt.stats().udf_calls > 7, "per-row fmgr crossings");
    }

    #[test]
    fn outside_scan_mdi_agrees_with_full_scan() {
        let mut db = names_db();
        db.execute("CREATE INDEX names_mdi ON names (mdi) USING btree")
            .unwrap();
        let full = lexequal_scan_fn("names", "name", "ph");
        let mdi = lexequal_scan_mdi_fn("names", "name", "ph", "mdi");
        for (q, k) in [("nehru", 1i64), ("nero", 2), ("bose", 0), ("xyz", 1)] {
            let qmdi = crate::mdi::mdi_key(q.as_bytes(), crate::mdi::DEFAULT_ANCHOR);
            let mut rt = PlRuntime::new(&mut db);
            let a = rt.call(&full, &[Datum::text(q), Datum::Int(k)]).unwrap();
            let b = rt
                .call(&mdi, &[Datum::text(q), Datum::Int(k), Datum::Int(qmdi)])
                .unwrap();
            let norm = |rows: Vec<Vec<Datum>>| {
                let mut v: Vec<String> = rows
                    .iter()
                    .map(|r| r[0].as_text().unwrap().to_string())
                    .collect();
                v.sort();
                v
            };
            assert_eq!(norm(a), norm(b), "q={q} k={k}");
        }
    }

    #[test]
    fn outside_join_small() {
        let mut db = names_db();
        db.execute("CREATE TABLE pubs (name TEXT, ph TEXT, mdi INT)")
            .unwrap();
        for n in ["neru", "bose"] {
            let mdi = crate::mdi::mdi_key(n.as_bytes(), crate::mdi::DEFAULT_ANCHOR);
            db.execute(&format!("INSERT INTO pubs VALUES ('{n}', '{n}', {mdi})"))
                .unwrap();
        }
        let join = lexequal_join_fn("pubs", "name", "ph", "names", "name", "ph");
        let mut rt = PlRuntime::new(&mut db);
        let rows = rt.call(&join, &[Datum::Int(1)]).unwrap();
        // neru ↔ {nehru, neru, nero}; bose ↔ {bose}.
        assert_eq!(rows.len(), 4);
        // Inner SPI statement re-issued per outer row.
        assert!(rt.stats().spi_statements >= 3);

        let join_mdi =
            lexequal_join_mdi_fn("pubs", "name", "ph", "mdi", "names", "name", "ph", "mdi");
        let mut rt2 = PlRuntime::new(&mut db);
        let rows2 = rt2.call(&join_mdi, &[Datum::Int(1)]).unwrap();
        assert_eq!(rows2.len(), 4, "MDI join agrees");
    }

    #[test]
    fn setsql_closure_matches_per_node_closure() {
        let mut db = Database::new_in_memory();
        let mural = install(&mut db).unwrap();
        db.execute("CREATE TABLE edges (child INT, parent INT)")
            .unwrap();
        let taxonomy = mural.sem.taxonomy();
        for id in taxonomy.ids() {
            for &c in taxonomy.children(id) {
                db.execute(&format!(
                    "INSERT INTO edges VALUES ({}, {})",
                    c.raw(),
                    id.raw()
                ))
                .unwrap();
            }
        }
        db.execute("CREATE TABLE cl (id INT)").unwrap();
        db.execute("CREATE TABLE fr (id INT)").unwrap();
        db.execute("CREATE TABLE fr2 (id INT)").unwrap();
        let langs = &mural.langs;
        let history = mlql_unitext::UniText::compose("History", langs.id_of("English"));
        let root = mural.sem.synsets_of(&history)[0];
        // Within one language tree (the edges table here has no
        // equivalence edges), expected size = the English subtree only.
        let f = semequal_closure_setsql_fn("edges", "cl", "fr", "fr2");
        let mut rt = PlRuntime::new(&mut db);
        let rows = rt.call(&f, &[Datum::Int(root.raw() as i64)]).unwrap();
        // History subtree in English: History, Historiography, Biography,
        // Autobiography.
        assert_eq!(rows.len(), 4);
        // Far fewer SPI statements than the per-node variant would need.
        assert!(rt.stats().spi_statements < 40, "{:?}", rt.stats());
    }

    #[test]
    fn interpreted_editdistance_matches_native() {
        let mut db = Database::new_in_memory();
        let _ = install(&mut db).unwrap();
        let ed = editdistance_pl_fn();
        let mut rt = PlRuntime::new(&mut db);
        for (a, b, want) in [
            ("kitten", "sitting", 3i64),
            ("", "", 0),
            ("abc", "", 3),
            ("", "xy", 2),
            ("same", "same", 0),
            ("nehru", "neru", 1),
            ("flaw", "lawn", 2),
        ] {
            let rows = rt.call(&ed, &[Datum::text(a), Datum::text(b)]).unwrap();
            assert_eq!(rows[0][0].as_int(), Some(want), "{a} vs {b}");
        }
    }

    #[test]
    fn local_udf_shadows_native_in_scan() {
        let mut db = names_db();
        let f = lexequal_scan_fn("names", "name", "ph");
        let mut rt = PlRuntime::new(&mut db);
        rt.register_function(editdistance_pl_fn());
        let rows = rt.call(&f, &[Datum::text("nehru"), Datum::Int(1)]).unwrap();
        let mut got: Vec<&str> = rows.iter().map(|r| r[0].as_text().unwrap()).collect();
        got.sort_unstable();
        assert_eq!(
            got,
            vec!["nehru", "neru"],
            "interpreted UDF gives identical results"
        );
    }

    #[test]
    fn outside_closure_matches_pinned_closure() {
        let mut db = Database::new_in_memory();
        let mural = install(&mut db).unwrap();
        // Store the taxonomy's edges relationally.
        db.execute("CREATE TABLE edges (child INT, parent INT)")
            .unwrap();
        let taxonomy = mural.sem.taxonomy();
        for id in taxonomy.ids() {
            for &c in taxonomy.children(id) {
                db.execute(&format!(
                    "INSERT INTO edges VALUES ({}, {})",
                    c.raw(),
                    id.raw()
                ))
                .unwrap();
            }
            for &e in taxonomy.equivalents(id) {
                // Equivalence edges are traversed like child edges.
                db.execute(&format!(
                    "INSERT INTO edges VALUES ({}, {})",
                    e.raw(),
                    id.raw()
                ))
                .unwrap();
            }
        }
        db.execute("CREATE TABLE scratch (id INT, done INT)")
            .unwrap();
        let langs = &mural.langs;
        let history = mlql_unitext::UniText::compose("History", langs.id_of("English"));
        let root = mural.sem.synsets_of(&history)[0];
        let expected = mural.sem.closure_size_of(&history).unwrap();

        let f = semequal_closure_fn("edges", "scratch");
        let mut rt = PlRuntime::new(&mut db);
        let rows = rt.call(&f, &[Datum::Int(root.raw() as i64)]).unwrap();
        assert_eq!(rows.len(), expected, "SQL-expanded closure size");
        let stats = rt.stats();
        assert!(
            stats.spi_statements as usize > expected,
            "at least one statement per closure member: {stats:?}"
        );
    }
}
