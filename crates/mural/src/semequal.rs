//! The SemEQUAL operator Ω as a first-class engine operator.
//!
//! Ω(LHS, RHS) is true when the LHS concept lies in the transitive closure
//! of the RHS concept within the interlinked multilingual taxonomy
//! (Figure 5 of the paper).  The core implementation follows §4.3: the
//! hierarchy is *pinned in main memory* and closures are *materialized as
//! hash tables* keyed by the RHS synset, so a join evaluating many LHS
//! values against few RHS values amortizes closure computation — exactly
//! the paper's nested-loops-with-RHS-outer optimization.

use crate::selectivity::{omega_join_selectivity, omega_scan_selectivity};
use crate::types::unitext_of_datum;
use mlql_kernel::catalog::{ExtOperator, OperatorKind};
use mlql_kernel::{DataType, Datum, ExtTypeId};
use mlql_taxonomy::{IntervalIndex, SharedClosureCache, SynsetId, Taxonomy};
use mlql_unitext::{LangId, LanguageRegistry, UniText};
use parking_lot::RwLock;
use std::sync::Arc;

/// Shared Ω state: the pinned taxonomy and its closure cache.
///
/// The cache is *sharded* ([`SharedClosureCache`]) so parallel scan
/// workers evaluating Ω concurrently share transitive-closure work without
/// serializing on one mutex.  The taxonomy itself is clone-on-write: the
/// mutation API swaps in a modified copy under the write lock and
/// invalidates every memoized closure before any reader can see the new
/// hierarchy — a query never observes a closure computed against a
/// different taxonomy than the one it reads.
pub struct SemState {
    /// The interlinked multilingual hierarchy.  Readers hold the guard
    /// across closure computation + memoization, which is what makes
    /// invalidation race-free (see `add_hyponym`).
    taxonomy: RwLock<Arc<Taxonomy>>,
    /// Interval-labeled reachability index over the same hierarchy — the
    /// Ω fast path.  Swapped (never mutated in place) while the taxonomy
    /// write guard is held, so any reader holding the taxonomy read guard
    /// sees an index consistent with its snapshot.  The common Ω probe is
    /// one interval comparison with no shard lock at all; only probes the
    /// index defers (exception-edge regions) touch the closure cache.
    intervals: RwLock<Arc<IntervalIndex>>,
    /// Generation counter: how many times the index has been rebuilt by
    /// the mutation API since install.
    interval_version: std::sync::atomic::AtomicU64,
    /// Memoized closures (§4.3), shared by all sessions and workers.
    pub cache: SharedClosureCache,
    /// Structural statistics captured at install time (drive §3.4.2).
    /// Deliberately *not* refreshed by the mutation API: cost-model
    /// parameters stay stable across small taxonomy edits, like ANALYZE
    /// statistics in a conventional engine.
    pub stats: mlql_taxonomy::TaxonomyStats,
}

impl SemState {
    /// Wrap a taxonomy.
    pub fn new(taxonomy: Arc<Taxonomy>) -> Arc<SemState> {
        // Contended closure-cache shard acquisitions count as
        // `omega_cache` waits on whichever query is running on the
        // blocked thread (idempotent; first install wins).
        mlql_taxonomy::set_shard_wait_observer(|d| {
            mlql_kernel::obs::waits::observe(mlql_kernel::obs::WaitClass::OmegaCache, d)
        });
        let stats = taxonomy.stats();
        let intervals = Arc::new(IntervalIndex::build(&taxonomy));
        Arc::new(SemState {
            taxonomy: RwLock::new(taxonomy),
            intervals: RwLock::new(intervals),
            interval_version: std::sync::atomic::AtomicU64::new(0),
            cache: SharedClosureCache::new(),
            stats,
        })
    }

    /// Current taxonomy snapshot (an `Arc` clone; cheap).
    pub fn taxonomy(&self) -> Arc<Taxonomy> {
        Arc::clone(&self.taxonomy.read())
    }

    /// Current interval-index snapshot (an `Arc` clone; cheap).
    pub fn intervals(&self) -> Arc<IntervalIndex> {
        Arc::clone(&self.intervals.read())
    }

    /// Interval-index rebuild generation (0 at install).
    pub fn interval_version(&self) -> u64 {
        self.interval_version
            .load(std::sync::atomic::Ordering::Relaxed)
    }

    /// Rebuild the interval index against `t` and publish the new
    /// generation.  MUST be called while the taxonomy *write* guard is
    /// held: readers take the taxonomy read guard before reading the
    /// index, so the swap is invisible until the mutation commits.
    fn rebuild_intervals(&self, t: &Taxonomy) {
        *self.intervals.write() = Arc::new(IntervalIndex::build(t));
        self.interval_version
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        mlql_kernel::obs::metrics()
            .omega_interval_rebuilds_total
            .add(1);
    }

    /// Add a hyponym edge (clone-on-write), invalidate all memoized
    /// closures and rebuild the interval index.  Both happen while the
    /// write guard is held, so no in-flight query can re-memoize a closure
    /// (or read an interval label) of the old hierarchy after the swap —
    /// readers hold the read guard across memoization.
    pub fn add_hyponym(&self, parent: SynsetId, child: SynsetId) {
        let mut guard = self.taxonomy.write();
        let mut t = Taxonomy::clone(&guard);
        t.add_hyponym(parent, child);
        self.rebuild_intervals(&t);
        *guard = Arc::new(t);
        self.cache.invalidate();
    }

    /// Remove a hyponym edge (clone-on-write) with the same invalidation
    /// protocol as [`Self::add_hyponym`]; returns whether the edge existed.
    pub fn remove_hyponym(&self, parent: SynsetId, child: SynsetId) -> bool {
        let mut guard = self.taxonomy.write();
        let mut t = Taxonomy::clone(&guard);
        let removed = t.remove_hyponym(parent, child);
        self.rebuild_intervals(&t);
        *guard = Arc::new(t);
        self.cache.invalidate();
        removed
    }

    /// Link two synsets as cross-lingual equivalents (clone-on-write),
    /// with the same invalidation protocol as [`Self::add_hyponym`].
    pub fn add_equivalence(&self, a: SynsetId, b: SynsetId) {
        let mut guard = self.taxonomy.write();
        let mut t = Taxonomy::clone(&guard);
        t.add_equivalence(a, b);
        self.rebuild_intervals(&t);
        *guard = Arc::new(t);
        self.cache.invalidate();
    }

    /// Synsets a UniText value names within `taxonomy`: exact (word, lang)
    /// entries, falling back to any-language lookup for untagged values.
    fn synsets_in(taxonomy: &Taxonomy, v: &UniText) -> Vec<SynsetId> {
        if v.lang() == LangId::UNKNOWN {
            taxonomy.lookup_any_lang(v.text())
        } else {
            taxonomy.lookup_unitext(v).to_vec()
        }
    }

    /// Synsets a UniText value names in the current taxonomy.
    pub fn synsets_of(&self, v: &UniText) -> Vec<SynsetId> {
        Self::synsets_in(&self.taxonomy.read(), v)
    }

    /// The Ω membership test of Figure 5, on the default (interval-first)
    /// path.
    pub fn omega_matches(&self, l: &UniText, r: &UniText) -> bool {
        self.omega_matches_opt(l, r, true)
    }

    /// Ω membership with an explicit strategy switch: when
    /// `use_intervals` (the `enable_omega_intervals` session default) the
    /// probe is decided by interval containment — one range comparison
    /// per (RHS, LHS) synset pair, no shard lock — and only falls back to
    /// the memoized hash closure when the index defers (interval miss
    /// under an exception-edge subtree).
    pub fn omega_matches_opt(&self, l: &UniText, r: &UniText, use_intervals: bool) -> bool {
        let taxonomy = self.taxonomy.read();
        let rhs = Self::synsets_in(&taxonomy, r);
        if rhs.is_empty() {
            return false;
        }
        let lhs = Self::synsets_in(&taxonomy, l);
        if lhs.is_empty() {
            return false;
        }
        let mut undecided: Vec<SynsetId> = Vec::new();
        if use_intervals {
            let idx = self.intervals.read();
            let m = mlql_kernel::obs::metrics();
            for &root in &rhs {
                let mut deferred = false;
                for &s in &lhs {
                    match idx.contains(root, s) {
                        Some(true) => {
                            m.omega_interval_hits_total.add(1);
                            return true;
                        }
                        Some(false) => {}
                        None => deferred = true,
                    }
                }
                if deferred {
                    undecided.push(root);
                }
            }
            if undecided.is_empty() {
                m.omega_interval_hits_total.add(1);
                return false;
            }
            m.omega_interval_fallbacks_total.add(1);
        } else {
            undecided = rhs;
        }
        let (hits_before, misses_before) = self.cache.stats();
        let matched = undecided.iter().any(|&root| {
            let closure = self.cache.closure(&taxonomy, root);
            lhs.iter().any(|s| closure.contains(s))
        });
        self.publish_cache_delta(hits_before, misses_before);
        matched
    }

    /// Batch Ω: `lefts[i] Ω r` for a whole batch against one constant RHS.
    ///
    /// Result-identical to [`Self::omega_matches`] on every element, but
    /// one taxonomy read guard covers the batch, the RHS synsets are
    /// resolved once, each needed closure is fetched from the shared
    /// cache **once** (instead of one shard acquisition per row), and
    /// each distinct LHS value is probed once — repeated hierarchy
    /// values, the common case in a scan, hit a batch-local memo.
    pub fn omega_matches_batch(
        &self,
        lefts: &[&Datum],
        r: &Datum,
    ) -> mlql_kernel::Result<Vec<Datum>> {
        self.omega_matches_batch_opt(lefts, r, true)
    }

    /// Batch Ω with the explicit strategy switch of
    /// [`Self::omega_matches_opt`].  On the interval path a distinct LHS
    /// value costs one range comparison per RHS synset — the comparison
    /// vectorizes trivially across the batch — and the shared closure
    /// cache is touched only for probes the index defers; interval
    /// hit/fallback counters are accumulated locally and published once
    /// per batch.
    pub fn omega_matches_batch_opt(
        &self,
        lefts: &[&Datum],
        r: &Datum,
        use_intervals: bool,
    ) -> mlql_kernel::Result<Vec<Datum>> {
        use std::collections::{HashMap, HashSet};
        let rv = unitext_of_datum(r)?;
        let taxonomy = self.taxonomy.read();
        let rhs = Self::synsets_in(&taxonomy, &rv);
        let idx = if use_intervals {
            Some(Arc::clone(&self.intervals.read()))
        } else {
            None
        };
        let (hits_before, misses_before) = self.cache.stats();
        // Closures resolve lazily (scalar Ω short-circuits across RHS
        // synsets, so an always-matching first root never pays for the
        // second root's closure) but at most once per batch.
        let mut closures: Vec<Option<Arc<HashSet<SynsetId>>>> = vec![None; rhs.len()];
        let mut memo: HashMap<&Datum, bool> = HashMap::new();
        let mut interval_hits = 0u64;
        let mut interval_fallbacks = 0u64;
        let mut out = Vec::with_capacity(lefts.len());
        for &l in lefts {
            let verdict = match memo.get(l) {
                Some(&v) => v,
                None => {
                    let lv = unitext_of_datum(l)?;
                    let lhs = if rhs.is_empty() {
                        Vec::new()
                    } else {
                        Self::synsets_in(&taxonomy, &lv)
                    };
                    let v = if lhs.is_empty() {
                        false
                    } else if let Some(idx) = idx.as_deref() {
                        let mut decided_true = false;
                        let mut undecided: Vec<usize> = Vec::new();
                        'roots: for (i, &root) in rhs.iter().enumerate() {
                            let mut deferred = false;
                            for &s in &lhs {
                                match idx.contains(root, s) {
                                    Some(true) => {
                                        decided_true = true;
                                        break 'roots;
                                    }
                                    Some(false) => {}
                                    None => deferred = true,
                                }
                            }
                            if deferred {
                                undecided.push(i);
                            }
                        }
                        if decided_true || undecided.is_empty() {
                            interval_hits += 1;
                            decided_true
                        } else {
                            interval_fallbacks += 1;
                            undecided.iter().any(|&i| {
                                let closure = closures[i]
                                    .get_or_insert_with(|| self.cache.closure(&taxonomy, rhs[i]));
                                lhs.iter().any(|s| closure.contains(s))
                            })
                        }
                    } else {
                        rhs.iter().enumerate().any(|(i, &root)| {
                            let closure = closures[i]
                                .get_or_insert_with(|| self.cache.closure(&taxonomy, root));
                            lhs.iter().any(|s| closure.contains(s))
                        })
                    };
                    memo.insert(l, v);
                    v
                }
            };
            out.push(Datum::Bool(verdict));
        }
        let m = mlql_kernel::obs::metrics();
        if interval_hits > 0 {
            m.omega_interval_hits_total.add(interval_hits);
        }
        if interval_fallbacks > 0 {
            m.omega_interval_fallbacks_total.add(interval_fallbacks);
        }
        self.publish_cache_delta(hits_before, misses_before);
        Ok(out)
    }

    /// Push the closure-cache hit/miss delta of one operation into the
    /// engine metrics (the cache's own counters are cumulative).
    fn publish_cache_delta(&self, hits_before: u64, misses_before: u64) {
        let (hits, misses) = self.cache.stats();
        let m = mlql_kernel::obs::metrics();
        m.taxonomy_closure_cache_hits_total
            .add(hits.saturating_sub(hits_before));
        m.taxonomy_closure_cache_misses_total
            .add(misses.saturating_sub(misses_before));
    }

    /// Exact closure size of the concept a constant names, if resolvable —
    /// the §3.4.2 "closures pre-computed and stored" selectivity variant.
    ///
    /// The interval index answers this in O(1) per root (`subtree_size`)
    /// wherever the subtree is exception-free; only roots in dirty
    /// regions materialize a closure, so planning a query over a
    /// tree-shaped taxonomy costs no closure computation at all.
    pub fn closure_size_of(&self, v: &UniText) -> Option<usize> {
        let taxonomy = self.taxonomy.read();
        let roots = Self::synsets_in(&taxonomy, v);
        if roots.is_empty() {
            return None;
        }
        let idx = self.intervals.read();
        Some(
            roots
                .iter()
                .map(|&r| {
                    idx.subtree_size(r)
                        .unwrap_or_else(|| self.cache.closure_size(&taxonomy, r))
                })
                .max()
                .expect("non-empty roots"),
        )
    }
}

/// Per-pair CPU cost of Ω on the memoized-closure path (Table 3 units).
pub const OMEGA_CLOSURE_TUPLE_COST: f64 = 80.0;
/// Per-pair CPU cost of Ω on the interval path: a UniText decode plus a
/// single range comparison — the same order as a ψ band check.
pub const OMEGA_INTERVAL_TUPLE_COST: f64 = 12.0;

/// Is the interval fast path enabled for this session?  `SET
/// enable_omega_intervals = 0` is the escape hatch back to the pure
/// closure-walk implementation; the default is on, overridable
/// process-wide via `MLQL_OMEGA_INTERVALS` (CI runs the equivalence
/// suites under both strategies with it).
pub fn omega_intervals_enabled(session: &mlql_kernel::catalog::SessionVars) -> bool {
    static DEFAULT: std::sync::OnceLock<i64> = std::sync::OnceLock::new();
    let default = *DEFAULT.get_or_init(|| {
        std::env::var("MLQL_OMEGA_INTERVALS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(1)
    });
    session.get_int("enable_omega_intervals", default) != 0
}

/// Build the Ω [`ExtOperator`].
pub fn semequal_operator(
    unitext_type: ExtTypeId,
    state: Arc<SemState>,
    langs: Arc<LanguageRegistry>,
) -> ExtOperator {
    let eval_state = Arc::clone(&state);
    let batch_state = Arc::clone(&state);
    let sel_state = Arc::clone(&state);
    ExtOperator {
        name: "semequal".into(),
        operand_type: DataType::Ext(unitext_type),
        eval: Arc::new(move |l, r, session| {
            let lv = unitext_of_datum(l)?;
            let rv = unitext_of_datum(r)?;
            Ok(Datum::Bool(eval_state.omega_matches_opt(
                &lv,
                &rv,
                omega_intervals_enabled(session),
            )))
        }),
        eval_batch: Some(Arc::new(move |lefts, r, session| {
            batch_state.omega_matches_batch_opt(lefts, r, omega_intervals_enabled(session))
        })),
        // Table 1: Ω does NOT commute (subsumption is directional) but
        // distributes over ∪.
        kind: OperatorKind {
            commutative: false,
            distributes_over_union: true,
        },
        // Per evaluated pair.  On the closure path: UniText decode, two
        // word-index probes, a cache-mutex acquisition and a hash-set
        // membership test — 80 units, calibrated against measurement (the
        // Figure 6 Ω points sit on the same cost-vs-runtime line as ψ
        // with this value).  On the interval path the shard lock and hash
        // probe vanish: one range comparison per pair, costed like a
        // cheap range predicate so the planner treats interval-Ω scans
        // accordingly.
        per_tuple_cost: Arc::new(|session, _| {
            if omega_intervals_enabled(session) {
                OMEGA_INTERVAL_TUPLE_COST
            } else {
                OMEGA_CLOSURE_TUPLE_COST
            }
        }),
        // §3.4.2.
        selectivity: Arc::new(move |input| {
            let exact = input
                .constant
                .and_then(|c| unitext_of_datum(c).ok())
                .and_then(|v| sel_state.closure_size_of(&v));
            let st = &sel_state.stats;
            if input.constant.is_some() {
                omega_scan_selectivity(exact, st.synsets, st.avg_fanout, st.height)
            } else {
                omega_join_selectivity(None, st.synsets, st.avg_fanout, st.height)
            }
        }),
        // The pinned-memory implementation needs no index; the B+Tree on
        // the taxonomy's parent attribute only serves the SQL-expansion
        // (outside-the-server) path benchmarked in Figure 8.
        index_strategy: None,
        index_extra: None,
        modifier_filter: Some(Arc::new(move |l, mods| {
            let Ok(v) = unitext_of_datum(l) else {
                return false;
            };
            mods.iter().any(|m| {
                langs
                    .lookup(m)
                    .map(|lang| lang.id == v.lang())
                    .unwrap_or(false)
            })
        })),
        index_scan_fraction: None,
        // EXPLAIN surfaces which containment implementation the session
        // will run: the interval index or the memoized closure walk.
        strategy_label: Some(Arc::new(|session| {
            if omega_intervals_enabled(session) {
                "intervals".to_string()
            } else {
                "closure-fallback".to_string()
            }
        })),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::unitext_datum;
    use mlql_kernel::catalog::SessionVars;
    use mlql_taxonomy::books_fragment;

    fn setup() -> (Arc<LanguageRegistry>, Arc<SemState>, ExtOperator) {
        let langs = Arc::new(LanguageRegistry::new());
        let (taxonomy, _) = books_fragment(&langs);
        let state = SemState::new(Arc::new(taxonomy));
        let op = semequal_operator(ExtTypeId(0), Arc::clone(&state), Arc::clone(&langs));
        (langs, state, op)
    }

    fn ut(langs: &LanguageRegistry, text: &str, lang: &str) -> Datum {
        unitext_datum(ExtTypeId(0), &UniText::compose(text, langs.id_of(lang)))
    }

    #[test]
    fn figure4_query_semantics() {
        let (langs, _, op) = setup();
        let session = SessionVars::new();
        let history = ut(&langs, "History", "English");
        // Subclasses in any language match.
        for (cat, lang) in [
            ("Historiography", "English"),
            ("Autobiography", "English"),
            ("Histoire", "French"),
            ("சரித்திரம்", "Tamil"),
            ("History", "English"), // reflexive
        ] {
            let lhs = ut(&langs, cat, lang);
            assert!(
                (op.eval)(&lhs, &history, &session).unwrap().is_true(),
                "{cat} must be under History"
            );
        }
        // Fiction does not.
        let fiction = ut(&langs, "Fiction", "English");
        assert!(!(op.eval)(&fiction, &history, &session).unwrap().is_true());
    }

    #[test]
    fn omega_is_directional() {
        let (langs, _, op) = setup();
        let session = SessionVars::new();
        let history = ut(&langs, "History", "English");
        let biography = ut(&langs, "Biography", "English");
        // Biography Ω History: true (Biography ⊑ History).
        assert!((op.eval)(&biography, &history, &session).unwrap().is_true());
        // History Ω Biography: false — Table 1's "Ω does not commute".
        assert!(!(op.eval)(&history, &biography, &session).unwrap().is_true());
        assert!(!op.kind.commutative);
    }

    #[test]
    fn unknown_concepts_never_match() {
        let (langs, _, op) = setup();
        let session = SessionVars::new();
        let unknown = ut(&langs, "Astrogation", "English");
        let history = ut(&langs, "History", "English");
        assert!(!(op.eval)(&unknown, &history, &session).unwrap().is_true());
        assert!(!(op.eval)(&history, &unknown, &session).unwrap().is_true());
    }

    #[test]
    fn closure_cache_amortizes_repeated_rhs() {
        let (langs, state, op) = setup();
        // Pin the legacy closure path: with intervals on, these probes
        // never touch the cache at all.
        let mut session = SessionVars::new();
        session.set("enable_omega_intervals", Datum::Int(0));
        let history = ut(&langs, "History", "English");
        for cat in ["Historiography", "Biography", "Fiction", "Novel"] {
            let lhs = ut(&langs, cat, "English");
            let _ = (op.eval)(&lhs, &history, &session).unwrap();
        }
        let (hits, misses) = state.cache.stats();
        assert_eq!(misses, 1, "one closure for the repeated RHS");
        assert!(hits >= 3);
    }

    #[test]
    fn interval_path_skips_closure_cache_entirely() {
        let (langs, state, op) = setup();
        let session = SessionVars::new(); // intervals default on
        let history = ut(&langs, "History", "English");
        for cat in ["Historiography", "Biography", "Fiction", "Novel"] {
            let lhs = ut(&langs, cat, "English");
            let _ = (op.eval)(&lhs, &history, &session).unwrap();
        }
        let (hits, misses) = state.cache.stats();
        assert_eq!((hits, misses), (0, 0), "no shard lock on the fast path");
        assert!(state.cache.is_empty(), "no closure materialized");
    }

    #[test]
    fn interval_and_closure_paths_agree_everywhere() {
        let (langs, state, _op) = setup();
        let cats = [
            ("History", "English"),
            ("Historiography", "English"),
            ("Biography", "English"),
            ("Autobiography", "English"),
            ("Fiction", "English"),
            ("Novel", "English"),
            ("Histoire", "French"),
            ("சரித்திரம்", "Tamil"),
            ("Astrogation", "English"), // unknown
        ];
        for (lt, ll) in cats {
            for (rt, rl) in cats {
                let l = UniText::compose(lt, langs.id_of(ll));
                let r = UniText::compose(rt, langs.id_of(rl));
                assert_eq!(
                    state.omega_matches_opt(&l, &r, true),
                    state.omega_matches_opt(&l, &r, false),
                    "{lt}({ll}) Ω {rt}({rl}) diverged between strategies"
                );
            }
        }
    }

    #[test]
    fn taxonomy_mutation_invalidates_memoized_closures() {
        let (langs, state, op) = setup();
        // Exercise the closure path; interval-path mutation visibility is
        // covered by `taxonomy_mutation_rebuilds_interval_index`.
        let mut session = SessionVars::new();
        session.set("enable_omega_intervals", Datum::Int(0));
        let history = ut(&langs, "History", "English");
        let fiction = ut(&langs, "Fiction", "English");
        // Fiction is not under History; the probe memoizes History's closure.
        assert!(!(op.eval)(&fiction, &history, &session).unwrap().is_true());
        assert!(!state.cache.is_empty());
        // Graft Fiction under History — the memoized closure is now wrong.
        let h = state.synsets_of(&UniText::compose("History", langs.id_of("English")))[0];
        let f = state.synsets_of(&UniText::compose("Fiction", langs.id_of("English")))[0];
        state.add_hyponym(h, f);
        assert!(state.cache.is_empty(), "mutation must clear the cache");
        assert!(
            (op.eval)(&fiction, &history, &session).unwrap().is_true(),
            "fresh closure must see the new edge"
        );
        // Prune it again: the match disappears just as promptly.
        assert!(state.remove_hyponym(h, f));
        assert!(!(op.eval)(&fiction, &history, &session).unwrap().is_true());
    }

    #[test]
    fn taxonomy_mutation_rebuilds_interval_index() {
        let (langs, state, op) = setup();
        let session = SessionVars::new(); // intervals default on
        let history = ut(&langs, "History", "English");
        let fiction = ut(&langs, "Fiction", "English");
        let v0 = state.interval_version();
        assert!(!(op.eval)(&fiction, &history, &session).unwrap().is_true());
        // Graft Fiction under History: the swapped-in index must see it.
        let h = state.synsets_of(&UniText::compose("History", langs.id_of("English")))[0];
        let f = state.synsets_of(&UniText::compose("Fiction", langs.id_of("English")))[0];
        state.add_hyponym(h, f);
        assert_eq!(state.interval_version(), v0 + 1);
        assert!(
            (op.eval)(&fiction, &history, &session).unwrap().is_true(),
            "rebuilt index must see the new edge"
        );
        assert!(state.remove_hyponym(h, f));
        assert_eq!(state.interval_version(), v0 + 2);
        assert!(!(op.eval)(&fiction, &history, &session).unwrap().is_true());
        // Equivalence linking goes through the same protocol: linking
        // Fiction to Histoire pulls it into History's closure.
        let hf = state.synsets_of(&UniText::compose("Histoire", langs.id_of("French")))[0];
        state.add_equivalence(hf, f);
        assert_eq!(state.interval_version(), v0 + 3);
        assert!((op.eval)(&fiction, &history, &session).unwrap().is_true());
    }

    #[test]
    fn batch_eval_matches_scalar_on_every_element() {
        let (langs, state, op) = setup();
        let session = SessionVars::new();
        let lefts_owned: Vec<Datum> = vec![
            ut(&langs, "Historiography", "English"),
            ut(&langs, "Fiction", "English"),
            ut(&langs, "Histoire", "French"),
            ut(&langs, "Astrogation", "English"), // unknown concept
            ut(&langs, "Historiography", "English"), // duplicate → memo hit
            ut(&langs, "சரித்திரம்", "Tamil"),
        ];
        let lefts: Vec<&Datum> = lefts_owned.iter().collect();
        for rhs in [
            ut(&langs, "History", "English"),
            ut(&langs, "Biography", "English"),
            ut(&langs, "Astrogation", "English"), // unknown RHS → all false
        ] {
            let batch = state.omega_matches_batch(&lefts, &rhs).unwrap();
            assert_eq!(batch.len(), lefts.len());
            for (l, got) in lefts.iter().zip(&batch) {
                let want = (op.eval)(l, &rhs, &session).unwrap().is_true();
                assert!(got.is_true() == want, "mismatch for {l:?} Ω {rhs:?}");
            }
            // Both batch strategies agree element-wise.
            let closure_batch = state.omega_matches_batch_opt(&lefts, &rhs, false).unwrap();
            for (a, b) in batch.iter().zip(&closure_batch) {
                assert!(a.is_true() == b.is_true(), "strategy divergence on {rhs:?}");
            }
        }
        // The registered hook routes to the same batch entry point.
        let hook = op.eval_batch.as_ref().unwrap();
        let rhs = ut(&langs, "History", "English");
        let via_hook = hook(&lefts, &rhs, &session).unwrap();
        let direct = state.omega_matches_batch(&lefts, &rhs).unwrap();
        for (a, b) in via_hook.iter().zip(&direct) {
            assert!(a.is_true() == b.is_true());
        }
    }

    #[test]
    fn batch_eval_resolves_each_closure_once() {
        let (langs, state, _op) = setup();
        let history = ut(&langs, "History", "English");
        let lefts_owned: Vec<Datum> = ["Historiography", "Biography", "Fiction", "Novel"]
            .iter()
            .map(|c| ut(&langs, c, "English"))
            .collect();
        let lefts: Vec<&Datum> = lefts_owned.iter().collect();
        // Closure path: the interval path would resolve zero closures.
        state
            .omega_matches_batch_opt(&lefts, &history, false)
            .unwrap();
        let (hits, misses) = state.cache.stats();
        assert_eq!(misses, 1, "one closure for the whole batch");
        assert_eq!(
            hits, 0,
            "distinct LHS values hit the batch memo, not the shards"
        );
    }

    #[test]
    fn exact_selectivity_for_known_concepts() {
        use mlql_kernel::catalog::SelectivityInput;
        let (langs, state, op) = setup();
        let session = SessionVars::new();
        let history = ut(&langs, "History", "English");
        let sel = (op.selectivity)(&SelectivityInput {
            column: None,
            constant: Some(&history),
            other_column: None,
            session: &session,
        });
        // History's closure covers 7 of the 12 synsets.
        let expected = state
            .closure_size_of(&UniText::compose("History", langs.id_of("English")))
            .unwrap() as f64
            / state.stats.synsets as f64;
        assert!(
            (sel - expected).abs() < 1e-9,
            "sel {sel} expected {expected}"
        );
    }

    #[test]
    fn untagged_concepts_match_any_language() {
        let (langs, state, _) = setup();
        let untagged = UniText::compose("History", LangId::UNKNOWN);
        assert!(!state.synsets_of(&untagged).is_empty());
        let _ = langs;
    }
}
