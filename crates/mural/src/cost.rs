//! Operator cost models — the paper's Table 3, as executable formulas.
//!
//! Each function returns an [`OpCost`] splitting the estimate into CPU
//! operations (units of one elementary comparison) and page I/O, matching
//! Table 3's "Complexity / Disk I/O" columns.  The engine's optimizer hooks
//! consume the per-tuple CPU terms; the `table3_cost_scaling` bench checks
//! the *shapes* empirically.
//!
//! Notation (Table 2): `n` records, `l` average record (phoneme) length,
//! `p` heap pages, `p_idx` index pages, `k` threshold, `f`/`h` taxonomy
//! fan-out and height, `n_t`/`p_t` taxonomy records/pages.

/// A cost estimate split into CPU and I/O.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OpCost {
    /// Elementary CPU operations (character comparisons, hash probes...).
    pub cpu: f64,
    /// Page reads.
    pub pages: f64,
}

impl OpCost {
    /// Combine with another estimate.
    pub fn plus(self, other: OpCost) -> OpCost {
        OpCost {
            cpu: self.cpu + other.cpu,
            pages: self.pages + other.pages,
        }
    }
}

/// Fraction of an approximate (metric) index traversed at threshold `k` —
/// "the fraction of the database scanned was approximated by a linear
/// function on the error threshold" (§3.3).
pub fn approx_index_fraction(k: usize) -> f64 {
    (0.25 * k as f64).clamp(0.05, 1.0)
}

// ------------------------------------------------------------------ ψ

/// ψ scan, no index: every record's phoneme string is compared with the
/// banded edit distance — `O(n · k · l)` CPU over `p` sequential pages.
pub fn psi_scan_no_index(n: f64, l: f64, k: usize, p: f64) -> OpCost {
    OpCost {
        cpu: n * (k as f64 + 1.0) * l,
        pages: p,
    }
}

/// ψ scan with an approximate index: a threshold-dependent fraction of the
/// index is traversed, each visited entry paying the banded distance.
pub fn psi_scan_approx_index(n: f64, l: f64, k: usize, p_idx: f64) -> OpCost {
    let frac = approx_index_fraction(k);
    OpCost {
        cpu: n * frac * (k as f64 + 1.0) * l,
        pages: p_idx * frac,
    }
}

/// ψ join, no index: `O(n_l · n_r · k · l)` CPU; the inner relation is
/// materialized once (`p_l + p_r` sequential I/O).
pub fn psi_join_no_index(n_l: f64, n_r: f64, l: f64, k: usize, p_l: f64, p_r: f64) -> OpCost {
    OpCost {
        cpu: n_l * n_r * (k as f64 + 1.0) * l,
        pages: p_l + p_r,
    }
}

/// ψ join probing an approximate index on the RHS for each LHS row.
pub fn psi_join_approx_index(n_l: f64, n_r: f64, l: f64, k: usize, p_l: f64, p_idx: f64) -> OpCost {
    let frac = approx_index_fraction(k);
    OpCost {
        cpu: n_l * n_r * frac * (k as f64 + 1.0) * l,
        pages: p_l + n_l * p_idx * frac,
    }
}

// ------------------------------------------------------------------ Ω

/// Expected closure size from the structural parameters (used when no
/// materialized closure exists).
pub fn expected_closure(f: f64, h: usize) -> f64 {
    f.max(1.0).powf(h as f64 / 2.0)
}

/// Ω scan, no index, pinned taxonomy: one closure computation
/// (`O(f^h)`-bounded, here the expected closure size) plus one hash
/// membership probe per record; taxonomy pages read once.
pub fn omega_scan_pinned(n: f64, f: f64, h: usize, p: f64, p_t: f64) -> OpCost {
    OpCost {
        cpu: expected_closure(f, h) + n,
        pages: p + p_t,
    }
}

/// Ω scan where the closure is expanded through SQL per frontier node
/// (the outside-the-server shape): each closure member costs a statement
/// over the taxonomy table — `closure · p_t` page reads without an index,
/// `closure · log(n_t)` with a B+Tree on the parent attribute.
pub fn omega_scan_sql(n: f64, f: f64, h: usize, p: f64, p_t: f64, btree: bool, n_t: f64) -> OpCost {
    let closure = expected_closure(f, h);
    let per_node_pages = if btree {
        n_t.max(2.0).log2() / 128.0 + 1.0
    } else {
        p_t
    };
    OpCost {
        cpu: closure * n_t.max(2.0).log2() + n,
        pages: p + closure * per_node_pages,
    }
}

/// Ω join with closure memoization: one closure per *distinct* RHS value
/// (`r_distinct`), membership probes for all pairs.
pub fn omega_join_pinned(
    n_l: f64,
    r_distinct: f64,
    f: f64,
    h: usize,
    p_l: f64,
    p_r: f64,
) -> OpCost {
    OpCost {
        cpu: r_distinct * expected_closure(f, h) + n_l * r_distinct,
        pages: p_l + p_r,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn psi_scan_linear_in_n_and_k() {
        let a = psi_scan_no_index(1000.0, 8.0, 1, 10.0);
        let b = psi_scan_no_index(2000.0, 8.0, 1, 20.0);
        assert!((b.cpu / a.cpu - 2.0).abs() < 1e-9);
        let c = psi_scan_no_index(1000.0, 8.0, 3, 10.0);
        assert!(c.cpu > a.cpu);
    }

    #[test]
    fn approx_index_fraction_is_linear_then_saturates() {
        assert!(approx_index_fraction(1) < approx_index_fraction(2));
        assert_eq!(approx_index_fraction(4), 1.0);
        assert_eq!(approx_index_fraction(10), 1.0);
        assert!(approx_index_fraction(0) > 0.0, "never free");
    }

    #[test]
    fn index_scan_cheaper_at_low_threshold_only() {
        let no_idx = psi_scan_no_index(50_000.0, 8.0, 1, 500.0);
        let idx = psi_scan_approx_index(50_000.0, 8.0, 1, 600.0);
        assert!(idx.cpu < no_idx.cpu);
        // At threshold 4+ the fraction saturates: the index degenerates to
        // a full scan (the paper's "marginal improvement" at k=3).
        let idx_hi = psi_scan_approx_index(50_000.0, 8.0, 4, 600.0);
        let no_hi = psi_scan_no_index(50_000.0, 8.0, 4, 500.0);
        assert!(idx_hi.cpu >= no_hi.cpu * 0.99);
    }

    #[test]
    fn psi_join_quadratic() {
        let a = psi_join_no_index(100.0, 100.0, 8.0, 2, 2.0, 2.0);
        let b = psi_join_no_index(200.0, 200.0, 8.0, 2, 4.0, 4.0);
        assert!((b.cpu / a.cpu - 4.0).abs() < 1e-9);
    }

    #[test]
    fn omega_sql_dwarfs_pinned() {
        let pinned = omega_scan_pinned(1000.0, 3.5, 16, 10.0, 100.0);
        let sql_noidx = omega_scan_sql(1000.0, 3.5, 16, 10.0, 100.0, false, 100_000.0);
        let sql_btree = omega_scan_sql(1000.0, 3.5, 16, 10.0, 100.0, true, 100_000.0);
        assert!(sql_noidx.pages > sql_btree.pages);
        assert!(sql_btree.pages > pinned.pages);
    }

    #[test]
    fn omega_join_amortizes_closures() {
        // 10 distinct RHS values cost 10 closures regardless of n_l.
        let a = omega_join_pinned(1000.0, 10.0, 3.5, 16, 5.0, 1.0);
        let b = omega_join_pinned(2000.0, 10.0, 3.5, 16, 10.0, 1.0);
        let closure_part = 10.0 * expected_closure(3.5, 16);
        assert!((a.cpu - closure_part - 10_000.0).abs() < 1e-6);
        assert!((b.cpu - closure_part - 20_000.0).abs() < 1e-6);
    }
}
