//! Table-driven grapheme-to-phoneme conversion for Indic abugida scripts:
//! Devanagari (Hindi), Tamil and Kannada.
//!
//! Abugidas attach an *inherent vowel* /a/ to every consonant letter; the
//! vowel is overridden by a dependent vowel sign (matra) and suppressed by
//! the virama.  The converter implements:
//!
//! * inherent-vowel insertion with virama/matra handling,
//! * Hindi word-final schwa deletion (नेहरू-style names come out right),
//! * Tamil positional voicing: the stop letters க ட த ப are voiced
//!   between vowels and after nasals (Tamil script does not distinguish
//!   voicing orthographically),
//! * aspiration folding (ख → /k/), matching the canonical alphabet's design.
//!
//! This mirrors what the paper's Dhvani integration produced: IPA phonemic
//! strings for Indic-language names (§4.2).

use crate::ipa::{Phone, PhonemeString};

/// Which abugida the converter handles.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IndicScript {
    Devanagari,
    Tamil,
    Kannada,
}

/// What a script character contributes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Glyph {
    /// Independent vowel letter (word-initial vowels).
    Vowel(Phone),
    /// Diphthong independent vowel (two phones).
    Vowel2(Phone, Phone),
    /// Consonant letter with inherent /a/.
    Consonant(Phone),
    /// Dependent vowel sign (matra) replacing the inherent vowel.
    Matra(Phone),
    /// Diphthong matra.
    Matra2(Phone, Phone),
    /// Virama / pulli: kills the inherent vowel.
    Virama,
    /// Anusvara: homorganic nasal, approximated /n/.
    Anusvara,
    /// Visarga: /h/.
    Visarga,
    /// Nukta or other combining sign we ignore.
    Ignore,
}

use Glyph::*;
use Phone::*;

fn devanagari(c: char) -> Option<Glyph> {
    Some(match c {
        '\u{0901}' | '\u{0902}' => Anusvara,
        '\u{0903}' => Visarga,
        'अ' => Vowel(A),
        'आ' => Vowel(A),
        'इ' => Vowel(I),
        'ई' => Vowel(I),
        'उ' => Vowel(U),
        'ऊ' => Vowel(U),
        'ऋ' => Vowel2(R, I),
        'ए' => Vowel(E),
        'ऐ' => Vowel2(A, I),
        'ओ' => Vowel(O),
        'औ' => Vowel2(A, U),
        'क' | 'ख' => Consonant(K),
        'ग' | 'घ' => Consonant(G),
        'ङ' => Consonant(Ng),
        'च' | 'छ' => Consonant(Ch),
        'ज' | 'झ' => Consonant(J),
        'ञ' => Consonant(Ny),
        'ट' | 'ठ' => Consonant(Tt),
        'ड' | 'ढ' => Consonant(Dd),
        'ण' => Consonant(Nn),
        'त' | 'थ' => Consonant(T),
        'द' | 'ध' => Consonant(D),
        'न' => Consonant(N),
        'प' => Consonant(P),
        'फ' => Consonant(F), // pʰ ≈ f in loanword-heavy name data
        'ब' | 'भ' => Consonant(B),
        'म' => Consonant(M),
        'य' => Consonant(Yy),
        'र' => Consonant(R),
        'ल' => Consonant(L),
        'ळ' => Consonant(Ll),
        'व' => Consonant(Vv),
        'श' | 'ष' => Consonant(Sh),
        'स' => Consonant(S),
        'ह' => Consonant(H),
        '\u{093C}' => Ignore, // nukta
        'ऽ' => Ignore,
        '\u{093E}' => Matra(A),
        '\u{093F}' | '\u{0940}' => Matra(I),
        '\u{0941}' | '\u{0942}' => Matra(U),
        '\u{0943}' => Matra2(R, I),
        '\u{0947}' => Matra(E),
        '\u{0948}' => Matra2(A, I),
        '\u{094B}' => Matra(O),
        '\u{094C}' => Matra2(A, U),
        '\u{094D}' => Virama,
        _ => return None,
    })
}

fn tamil(c: char) -> Option<Glyph> {
    Some(match c {
        '\u{0B82}' => Anusvara,
        'அ' => Vowel(A),
        'ஆ' => Vowel(A),
        'இ' => Vowel(I),
        'ஈ' => Vowel(I),
        'உ' => Vowel(U),
        'ஊ' => Vowel(U),
        'எ' | 'ஏ' => Vowel(E),
        'ஐ' => Vowel2(A, I),
        'ஒ' | 'ஓ' => Vowel(O),
        'ஔ' => Vowel2(A, U),
        'க' => Consonant(K), // voiced positionally
        'ங' => Consonant(Ng),
        'ச' => Consonant(Ch),
        'ஜ' => Consonant(J),
        'ஞ' => Consonant(Ny),
        'ட' => Consonant(Tt),
        'ண' => Consonant(Nn),
        'த' => Consonant(T),
        'ந' | 'ன' => Consonant(N),
        'ப' => Consonant(P),
        'ம' => Consonant(M),
        'ய' => Consonant(Yy),
        'ர' | 'ற' => Consonant(R),
        'ல' => Consonant(L),
        'ள' => Consonant(Ll),
        'ழ' => Consonant(Rr),
        'வ' => Consonant(Vv),
        'ஶ' | 'ஷ' => Consonant(Sh),
        'ஸ' => Consonant(S),
        'ஹ' => Consonant(H),
        '\u{0BBE}' => Matra(A),
        '\u{0BBF}' | '\u{0BC0}' => Matra(I),
        '\u{0BC1}' | '\u{0BC2}' => Matra(U),
        '\u{0BC6}' | '\u{0BC7}' => Matra(E),
        '\u{0BC8}' => Matra2(A, I),
        '\u{0BCA}' | '\u{0BCB}' => Matra(O),
        '\u{0BCC}' => Matra2(A, U),
        '\u{0BCD}' => Virama,
        _ => return None,
    })
}

fn kannada(c: char) -> Option<Glyph> {
    Some(match c {
        '\u{0C82}' => Anusvara,
        '\u{0C83}' => Visarga,
        'ಅ' => Vowel(A),
        'ಆ' => Vowel(A),
        'ಇ' => Vowel(I),
        'ಈ' => Vowel(I),
        'ಉ' => Vowel(U),
        'ಊ' => Vowel(U),
        'ಋ' => Vowel2(R, I),
        'ಎ' | 'ಏ' => Vowel(E),
        'ಐ' => Vowel2(A, I),
        'ಒ' | 'ಓ' => Vowel(O),
        'ಔ' => Vowel2(A, U),
        'ಕ' | 'ಖ' => Consonant(K),
        'ಗ' | 'ಘ' => Consonant(G),
        'ಙ' => Consonant(Ng),
        'ಚ' | 'ಛ' => Consonant(Ch),
        'ಜ' | 'ಝ' => Consonant(J),
        'ಞ' => Consonant(Ny),
        'ಟ' | 'ಠ' => Consonant(Tt),
        'ಡ' | 'ಢ' => Consonant(Dd),
        'ಣ' => Consonant(Nn),
        'ತ' | 'ಥ' => Consonant(T),
        'ದ' | 'ಧ' => Consonant(D),
        'ನ' => Consonant(N),
        'ಪ' => Consonant(P),
        'ಫ' => Consonant(F),
        'ಬ' | 'ಭ' => Consonant(B),
        'ಮ' => Consonant(M),
        'ಯ' => Consonant(Yy),
        'ರ' => Consonant(R),
        'ಲ' => Consonant(L),
        'ಳ' => Consonant(Ll),
        'ವ' => Consonant(Vv),
        'ಶ' | 'ಷ' => Consonant(Sh),
        'ಸ' => Consonant(S),
        'ಹ' => Consonant(H),
        '\u{0CBE}' => Matra(A),
        '\u{0CBF}' | '\u{0CC0}' => Matra(I),
        '\u{0CC1}' | '\u{0CC2}' => Matra(U),
        '\u{0CC3}' => Matra2(R, I),
        '\u{0CC6}' | '\u{0CC7}' => Matra(E),
        '\u{0CC8}' => Matra2(A, I),
        '\u{0CCA}' | '\u{0CCB}' => Matra(O),
        '\u{0CCC}' => Matra2(A, U),
        '\u{0CCD}' => Virama,
        _ => return None,
    })
}

/// Convert an Indic-script string to phones.
pub fn convert(script: IndicScript, input: &str) -> PhonemeString {
    let classify: fn(char) -> Option<Glyph> = match script {
        IndicScript::Devanagari => devanagari,
        IndicScript::Tamil => tamil,
        IndicScript::Kannada => kannada,
    };
    let glyphs: Vec<Glyph> = input.chars().filter_map(classify).collect();
    // (phone, came-from-inherent-vowel) — the flag drives Hindi schwa
    // deletion, which applies only to inherent vowels, never to matras.
    let mut phones: Vec<(Phone, bool)> = Vec::with_capacity(glyphs.len() + 4);
    let mut pending_inherent = false;
    let flush = |phones: &mut Vec<(Phone, bool)>, pending: &mut bool| {
        if *pending {
            phones.push((A, true));
            *pending = false;
        }
    };

    for &g in &glyphs {
        match g {
            Consonant(p) => {
                flush(&mut phones, &mut pending_inherent);
                phones.push((p, false));
                pending_inherent = true;
            }
            Vowel(p) => {
                flush(&mut phones, &mut pending_inherent);
                phones.push((p, false));
            }
            Vowel2(p, q) => {
                flush(&mut phones, &mut pending_inherent);
                phones.push((p, false));
                phones.push((q, false));
            }
            Matra(p) => {
                pending_inherent = false;
                phones.push((p, false));
            }
            Matra2(p, q) => {
                pending_inherent = false;
                phones.push((p, false));
                phones.push((q, false));
            }
            Virama => {
                pending_inherent = false;
            }
            Anusvara => {
                flush(&mut phones, &mut pending_inherent);
                phones.push((N, false));
            }
            Visarga => {
                flush(&mut phones, &mut pending_inherent);
                phones.push((H, false));
            }
            Ignore => {}
        }
    }
    if pending_inherent {
        // Word-final inherent vowel: Hindi deletes the final schwa; Tamil
        // and Kannada pronounce it.
        if script != IndicScript::Devanagari {
            phones.push((A, false));
        }
    }

    if script == IndicScript::Devanagari {
        delete_medial_schwas(&mut phones);
    }

    let mut out: PhonemeString = phones.iter().map(|&(p, _)| p).collect();
    if script == IndicScript::Tamil {
        apply_tamil_voicing(&mut out);
    }
    out
}

/// Hindi medial schwa deletion: an *inherent* /a/ in the context V C _ C V
/// is not pronounced (e.g. नेहरू → /nehru/, not /neharu/).
fn delete_medial_schwas(phones: &mut Vec<(Phone, bool)>) {
    let mut i = 0;
    while i < phones.len() {
        let (p, inherent) = phones[i];
        let deletable = inherent
            && p == A
            && i >= 2
            && i + 2 < phones.len()
            && phones[i - 2].0.is_vowel()
            && !phones[i - 1].0.is_vowel()
            && !phones[i + 1].0.is_vowel()
            && phones[i + 2].0.is_vowel();
        if deletable {
            phones.remove(i);
        } else {
            i += 1;
        }
    }
}

/// Tamil positional voicing: the unvoiced stops /k ʈ t p tʃ/ become
/// /ɡ ɖ d b dʒ~s/ between vowels and after nasals.
fn apply_tamil_voicing(ps: &mut PhonemeString) {
    let bytes: Vec<u8> = ps.as_bytes().to_vec();
    let phones: Vec<Phone> = bytes.iter().filter_map(|&b| Phone::from_byte(b)).collect();
    let mut voiced = PhonemeString::new();
    for (i, &p) in phones.iter().enumerate() {
        let prev = if i > 0 { Some(phones[i - 1]) } else { None };
        let next = phones.get(i + 1).copied();
        let after_voiced = prev.map(|q| q.is_vowel() || q.is_nasal()).unwrap_or(false);
        let before_vowel = next.map(|q| q.is_vowel()).unwrap_or(false);
        let after_nasal = prev.map(|q| q.is_nasal()).unwrap_or(false);
        let intervocalic = prev.map(|q| q.is_vowel()).unwrap_or(false) && before_vowel;
        let voice = after_nasal || intervocalic;
        let out = if voice {
            match p {
                K => G,
                Tt => Dd,
                T => D,
                P => B,
                Ch => S, // Tamil ச is /s/ intervocalically
                other => other,
            }
        } else {
            p
        };
        let _ = after_voiced;
        voiced.push(out);
    }
    *ps = voiced;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hindi_nehru() {
        // नेहरू = n + e-matra, h, r + uu-matra
        assert_eq!(convert(IndicScript::Devanagari, "नेहरू").to_ipa(), "nehru");
    }

    #[test]
    fn hindi_final_schwa_deleted() {
        // राम = r + aa-matra + m(+a deleted finally) -> /ram/
        assert_eq!(convert(IndicScript::Devanagari, "राम").to_ipa(), "ram");
    }

    #[test]
    fn hindi_conjunct_virama() {
        // क्र = k + virama + r + (final schwa deleted) -> /kr/
        assert_eq!(convert(IndicScript::Devanagari, "क्र").to_ipa(), "kr");
    }

    #[test]
    fn tamil_neru() {
        // நேரு = n + ee-matra + r + u-matra
        assert_eq!(convert(IndicScript::Tamil, "நேரு").to_ipa(), "neru");
    }

    #[test]
    fn tamil_voicing_after_nasal() {
        // பாண்டி = p aa ɳ (virama) ʈ i -> ʈ voiced to ɖ after nasal
        assert_eq!(convert(IndicScript::Tamil, "பாண்டி").to_ipa(), "paɳɖi");
    }

    #[test]
    fn tamil_intervocalic_voicing() {
        // மகன் = m a k a n -> k voiced intervocalically
        assert_eq!(convert(IndicScript::Tamil, "மகன்").to_ipa(), "maɡan");
    }

    #[test]
    fn kannada_nehru() {
        // ನೆಹರು = n + e-matra, h, r + u-matra, final a pronounced?  No: ರು has u-matra.
        assert_eq!(convert(IndicScript::Kannada, "ನೆಹರು").to_ipa(), "neharu");
    }

    #[test]
    fn kannada_final_inherent_vowel_kept() {
        // ರಾಮ -> /rama/ in Kannada (no schwa deletion)
        assert_eq!(convert(IndicScript::Kannada, "ರಾಮ").to_ipa(), "rama");
    }

    #[test]
    fn cross_script_names_are_close() {
        use crate::distance::edit_distance;
        let hi = convert(IndicScript::Devanagari, "नेहरू");
        let ta = convert(IndicScript::Tamil, "நேரு");
        let d = edit_distance(hi.as_bytes(), ta.as_bytes());
        assert!(d <= 2, "hi={} ta={} d={}", hi.to_ipa(), ta.to_ipa(), d);
    }

    #[test]
    fn non_script_chars_ignored() {
        assert!(convert(IndicScript::Devanagari, "abc 123").is_empty());
    }
}
