//! German grapheme-to-phoneme rules (names-oriented).
//!
//! German orthography is fairly regular; the rules cover the digraphs and
//! positional devoicing that matter for surname matching (Meyer/Meier,
//! Schmidt/Schmitt, Bauer, Müller...).

use crate::ipa::Phone;
use crate::ruleset::{Ctx, Rule, RuleSet};

use Ctx::{Boundary as B, Lit, Vowel as V};
use Phone::*;

/// Build the German rule set.
pub fn german_rules() -> RuleSet {
    RuleSet::new(vec![
        // ---------- multigraphs ----------
        Rule {
            left: &[],
            pattern: "sch",
            right: &[],
            output: &[Sh],
        },
        Rule {
            left: &[],
            pattern: "tsch",
            right: &[],
            output: &[Ch],
        },
        Rule {
            left: &[],
            pattern: "chs",
            right: &[],
            output: &[K, S],
        },
        Rule {
            left: &[Lit('a')],
            pattern: "ch",
            right: &[],
            output: &[H],
        }, // ach-Laut ≈ /x/→h
        Rule {
            left: &[Lit('o')],
            pattern: "ch",
            right: &[],
            output: &[H],
        },
        Rule {
            left: &[Lit('u')],
            pattern: "ch",
            right: &[],
            output: &[H],
        },
        Rule {
            left: &[],
            pattern: "ch",
            right: &[],
            output: &[H],
        }, // ich-Laut ≈ ç→h
        Rule {
            left: &[],
            pattern: "ck",
            right: &[],
            output: &[K],
        },
        Rule {
            left: &[],
            pattern: "dt",
            right: &[],
            output: &[T],
        },
        Rule {
            left: &[],
            pattern: "er",
            right: &[B],
            output: &[Schwa, R],
        },
        Rule {
            left: &[],
            pattern: "tz",
            right: &[],
            output: &[T, S],
        },
        Rule {
            left: &[],
            pattern: "pf",
            right: &[],
            output: &[P, F],
        },
        Rule {
            left: &[],
            pattern: "ph",
            right: &[],
            output: &[F],
        },
        Rule {
            left: &[],
            pattern: "th",
            right: &[],
            output: &[T],
        },
        Rule {
            left: &[],
            pattern: "qu",
            right: &[],
            output: &[K, Phone::V],
        },
        Rule {
            left: &[B],
            pattern: "sp",
            right: &[],
            output: &[Sh, P],
        },
        Rule {
            left: &[B],
            pattern: "st",
            right: &[],
            output: &[Sh, T],
        },
        Rule {
            left: &[],
            pattern: "ss",
            right: &[],
            output: &[S],
        },
        Rule {
            left: &[],
            pattern: "ß",
            right: &[],
            output: &[S],
        },
        // ---------- vowel digraphs ----------
        Rule {
            left: &[],
            pattern: "sche",
            right: &[B],
            output: &[Sh, Schwa],
        },
        Rule {
            left: &[],
            pattern: "ei",
            right: &[],
            output: &[A, I],
        },
        Rule {
            left: &[],
            pattern: "ey",
            right: &[],
            output: &[A, I],
        },
        Rule {
            left: &[],
            pattern: "ai",
            right: &[],
            output: &[A, I],
        },
        Rule {
            left: &[],
            pattern: "ay",
            right: &[],
            output: &[A, I],
        },
        Rule {
            left: &[],
            pattern: "au",
            right: &[],
            output: &[A, U],
        },
        Rule {
            left: &[],
            pattern: "eu",
            right: &[],
            output: &[Oo, I],
        },
        Rule {
            left: &[],
            pattern: "äu",
            right: &[],
            output: &[Oo, I],
        },
        Rule {
            left: &[],
            pattern: "ie",
            right: &[],
            output: &[I],
        },
        Rule {
            left: &[],
            pattern: "ee",
            right: &[],
            output: &[E],
        },
        Rule {
            left: &[],
            pattern: "aa",
            right: &[],
            output: &[A],
        },
        Rule {
            left: &[],
            pattern: "oo",
            right: &[],
            output: &[O],
        },
        Rule {
            left: &[],
            pattern: "eh",
            right: &[],
            output: &[E],
        },
        Rule {
            left: &[],
            pattern: "ah",
            right: &[],
            output: &[A],
        },
        Rule {
            left: &[],
            pattern: "oh",
            right: &[],
            output: &[O],
        },
        Rule {
            left: &[],
            pattern: "uh",
            right: &[],
            output: &[U],
        },
        Rule {
            left: &[],
            pattern: "ih",
            right: &[],
            output: &[I],
        },
        // ---------- umlauts ----------
        Rule {
            left: &[],
            pattern: "ä",
            right: &[],
            output: &[E],
        },
        Rule {
            left: &[],
            pattern: "ö",
            right: &[],
            output: &[U],
        }, // ø ≈ u-ish fold
        Rule {
            left: &[],
            pattern: "ü",
            right: &[],
            output: &[U],
        },
        // ---------- consonants ----------
        // Final devoicing: b/d/g at word end → p/t/k.
        Rule {
            left: &[],
            pattern: "b",
            right: &[B],
            output: &[P],
        },
        Rule {
            left: &[],
            pattern: "d",
            right: &[B],
            output: &[T],
        },
        Rule {
            left: &[],
            pattern: "g",
            right: &[B],
            output: &[K],
        },
        Rule {
            left: &[],
            pattern: "b",
            right: &[],
            output: &[Phone::B],
        },
        Rule {
            left: &[],
            pattern: "d",
            right: &[],
            output: &[D],
        },
        Rule {
            left: &[],
            pattern: "g",
            right: &[],
            output: &[G],
        },
        Rule {
            left: &[],
            pattern: "w",
            right: &[],
            output: &[Phone::V],
        },
        Rule {
            left: &[B],
            pattern: "v",
            right: &[],
            output: &[F],
        },
        Rule {
            left: &[],
            pattern: "v",
            right: &[],
            output: &[Phone::V],
        },
        Rule {
            left: &[B],
            pattern: "s",
            right: &[V],
            output: &[Z],
        }, // initial s+vowel voiced
        Rule {
            left: &[V],
            pattern: "s",
            right: &[V],
            output: &[Z],
        },
        Rule {
            left: &[],
            pattern: "s",
            right: &[],
            output: &[S],
        },
        Rule {
            left: &[],
            pattern: "z",
            right: &[],
            output: &[T, S],
        },
        Rule {
            left: &[],
            pattern: "j",
            right: &[],
            output: &[Yy],
        },
        Rule {
            left: &[],
            pattern: "c",
            right: &[Lit('e')],
            output: &[T, S],
        },
        Rule {
            left: &[],
            pattern: "c",
            right: &[Lit('i')],
            output: &[T, S],
        },
        Rule {
            left: &[],
            pattern: "c",
            right: &[],
            output: &[K],
        },
        Rule {
            left: &[],
            pattern: "f",
            right: &[],
            output: &[F],
        },
        Rule {
            left: &[],
            pattern: "h",
            right: &[],
            output: &[H],
        },
        Rule {
            left: &[],
            pattern: "k",
            right: &[],
            output: &[K],
        },
        Rule {
            left: &[],
            pattern: "l",
            right: &[Lit('l')],
            output: &[],
        },
        Rule {
            left: &[],
            pattern: "l",
            right: &[],
            output: &[L],
        },
        Rule {
            left: &[],
            pattern: "m",
            right: &[Lit('m')],
            output: &[],
        },
        Rule {
            left: &[],
            pattern: "m",
            right: &[],
            output: &[M],
        },
        Rule {
            left: &[],
            pattern: "n",
            right: &[Lit('n')],
            output: &[],
        },
        Rule {
            left: &[],
            pattern: "n",
            right: &[],
            output: &[N],
        },
        Rule {
            left: &[],
            pattern: "p",
            right: &[],
            output: &[P],
        },
        Rule {
            left: &[],
            pattern: "r",
            right: &[Lit('r')],
            output: &[],
        },
        Rule {
            left: &[],
            pattern: "r",
            right: &[],
            output: &[R],
        },
        Rule {
            left: &[],
            pattern: "t",
            right: &[Lit('t')],
            output: &[],
        },
        Rule {
            left: &[],
            pattern: "t",
            right: &[],
            output: &[T],
        },
        Rule {
            left: &[],
            pattern: "x",
            right: &[],
            output: &[K, S],
        },
        Rule {
            left: &[],
            pattern: "y",
            right: &[],
            output: &[I],
        },
        // ---------- single vowels ----------
        Rule {
            left: &[],
            pattern: "a",
            right: &[],
            output: &[A],
        },
        Rule {
            left: &[],
            pattern: "e",
            right: &[B],
            output: &[Schwa],
        },
        Rule {
            left: &[],
            pattern: "e",
            right: &[],
            output: &[E],
        },
        Rule {
            left: &[],
            pattern: "i",
            right: &[],
            output: &[I],
        },
        Rule {
            left: &[],
            pattern: "o",
            right: &[],
            output: &[O],
        },
        Rule {
            left: &[],
            pattern: "u",
            right: &[],
            output: &[U],
        },
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distance::edit_distance;

    fn ipa(s: &str) -> String {
        german_rules().convert(s).to_ipa()
    }

    #[test]
    fn classic_surnames() {
        assert_eq!(ipa("Schmidt"), "ʃmit");
        assert_eq!(ipa("Meyer"), "maiər");
        assert_eq!(ipa("Bauer"), "bauər");
    }

    #[test]
    fn meier_meyer_mayer_collide() {
        let variants = ["Meier", "Meyer", "Mayer", "Maier"];
        for a in variants {
            for b in variants {
                let d = edit_distance(ipa(a).as_bytes(), ipa(b).as_bytes());
                assert!(d <= 1, "{a}={} vs {b}={} d={d}", ipa(a), ipa(b));
            }
        }
    }

    #[test]
    fn final_devoicing() {
        // "Lindberg": final g → k
        assert!(ipa("berg").ends_with('k'));
        assert!(ipa("wald").ends_with('t'));
    }

    #[test]
    fn initial_s_voicing_and_sch() {
        assert_eq!(ipa("Siemens"), "zimens");
        assert!(ipa("Schulz").starts_with('ʃ'));
        assert!(ipa("Stein").starts_with("ʃt"));
    }

    #[test]
    fn z_is_affricate() {
        assert_eq!(ipa("Zimmer"), "tsimər");
    }
}
