//! Language → phoneme-converter dispatch.
//!
//! The engine consults a [`ConverterRegistry`] at *insertion time* to
//! materialize the phonemic string of every `UniText` value (§4.2: "the
//! phonemic strings corresponding to the multilingual strings were
//! materialized to avoid repeated conversions"), and at *query time* to
//! convert query constants.

use crate::english::english_rules;
use crate::french::french_rules;
use crate::german::german_rules;
use crate::indic::{self, IndicScript};
use crate::ipa::PhonemeString;
use crate::ruleset::RuleSet;
use crate::spanish::spanish_rules;
use mlql_unitext::{LangId, LanguageRegistry, UniText};
use std::collections::HashMap;
use std::sync::Arc;

/// A grapheme-to-phoneme converter for one language.
pub trait PhonemeConverter: Send + Sync {
    /// Convert a text string into its phonemic string.
    fn to_phonemes(&self, text: &str) -> PhonemeString;

    /// Human-readable name (shown by `EXPLAIN`-style output and tests).
    fn name(&self) -> &str;
}

struct RuleConverter {
    name: String,
    rules: RuleSet,
}

impl PhonemeConverter for RuleConverter {
    fn to_phonemes(&self, text: &str) -> PhonemeString {
        self.rules.convert(text)
    }
    fn name(&self) -> &str {
        &self.name
    }
}

struct IndicConverter {
    name: String,
    script: IndicScript,
}

impl PhonemeConverter for IndicConverter {
    fn to_phonemes(&self, text: &str) -> PhonemeString {
        indic::convert(self.script, text)
    }
    fn name(&self) -> &str {
        &self.name
    }
}

/// Registry of phoneme converters keyed by [`LangId`].
///
/// Cloning is cheap (converters are shared via `Arc`), so the engine can
/// hand copies to executor nodes without locking.
#[derive(Clone, Default)]
pub struct ConverterRegistry {
    converters: HashMap<LangId, Arc<dyn PhonemeConverter>>,
}

impl ConverterRegistry {
    /// Empty registry.
    pub fn new() -> Self {
        ConverterRegistry::default()
    }

    /// Registry with converters for all built-in languages of `langs`:
    /// English, French, German, Spanish (rule engines), Hindi, Tamil,
    /// Kannada (Indic tables).
    pub fn with_builtins(langs: &LanguageRegistry) -> Self {
        let mut reg = ConverterRegistry::new();
        reg.register(
            langs.id_of("English"),
            Arc::new(RuleConverter {
                name: "english-nrl".into(),
                rules: english_rules(),
            }),
        );
        reg.register(
            langs.id_of("French"),
            Arc::new(RuleConverter {
                name: "french-rules".into(),
                rules: french_rules(),
            }),
        );
        reg.register(
            langs.id_of("German"),
            Arc::new(RuleConverter {
                name: "german-rules".into(),
                rules: german_rules(),
            }),
        );
        reg.register(
            langs.id_of("Spanish"),
            Arc::new(RuleConverter {
                name: "spanish-rules".into(),
                rules: spanish_rules(),
            }),
        );
        reg.register(
            langs.id_of("Hindi"),
            Arc::new(IndicConverter {
                name: "devanagari".into(),
                script: IndicScript::Devanagari,
            }),
        );
        reg.register(
            langs.id_of("Tamil"),
            Arc::new(IndicConverter {
                name: "tamil".into(),
                script: IndicScript::Tamil,
            }),
        );
        reg.register(
            langs.id_of("Kannada"),
            Arc::new(IndicConverter {
                name: "kannada".into(),
                script: IndicScript::Kannada,
            }),
        );
        reg
    }

    /// Register (or replace) the converter for a language.
    pub fn register(&mut self, lang: LangId, conv: Arc<dyn PhonemeConverter>) {
        self.converters.insert(lang, conv);
    }

    /// The converter for `lang`, if one is registered.
    pub fn get(&self, lang: LangId) -> Option<&Arc<dyn PhonemeConverter>> {
        self.converters.get(&lang)
    }

    /// Convert the text of a `UniText` value.  Returns the *materialized*
    /// phoneme string when present (never re-converts — exactly the paper's
    /// caching behaviour), otherwise runs the converter for the value's
    /// language; unknown languages yield an empty phoneme string, which
    /// matches nothing at sane thresholds.
    pub fn phonemes_of(&self, value: &UniText) -> PhonemeString {
        if let Some(cached) = value.phoneme() {
            return PhonemeString::from_bytes(cached.as_bytes());
        }
        match self.get(value.lang()) {
            Some(conv) => conv.to_phonemes(value.text()),
            None => PhonemeString::new(),
        }
    }

    /// Materialize the phoneme string into the value (insertion-time hook).
    pub fn materialize(&self, value: &mut UniText) {
        if value.phoneme().is_some() {
            return;
        }
        if let Some(conv) = self.get(value.lang()) {
            let ps = conv.to_phonemes(value.text());
            // Phone bytes are ASCII by construction, so this is a valid UTF-8 string.
            value.set_phoneme(String::from_utf8_lossy(ps.as_bytes()).into_owned());
        }
    }

    /// Number of registered converters.
    pub fn len(&self) -> usize {
        self.converters.len()
    }

    /// True when no converter is registered.
    pub fn is_empty(&self) -> bool {
        self.converters.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distance::edit_distance;

    fn setup() -> (LanguageRegistry, ConverterRegistry) {
        let langs = LanguageRegistry::new();
        let convs = ConverterRegistry::with_builtins(&langs);
        (langs, convs)
    }

    #[test]
    fn builtin_coverage() {
        let (langs, convs) = setup();
        for name in ["English", "French", "Hindi", "Tamil", "Kannada"] {
            assert!(
                convs.get(langs.id_of(name)).is_some(),
                "missing converter for {name}"
            );
        }
        assert!(!convs.is_empty());
    }

    #[test]
    fn nehru_across_languages_is_phonetically_close() {
        let (langs, convs) = setup();
        // The paper's Figure 2 query: 'Nehru' in English matches the Hindi
        // and Tamil renderings at threshold 2.
        let en = convs.phonemes_of(&UniText::compose("Nehru", langs.id_of("English")));
        let hi = convs.phonemes_of(&UniText::compose("नेहरू", langs.id_of("Hindi")));
        let ta = convs.phonemes_of(&UniText::compose("நேரு", langs.id_of("Tamil")));
        assert!(
            edit_distance(en.as_bytes(), hi.as_bytes()) <= 2,
            "en={en} hi={hi}"
        );
        assert!(
            edit_distance(en.as_bytes(), ta.as_bytes()) <= 2,
            "en={en} ta={ta}"
        );
    }

    #[test]
    fn materialized_phoneme_is_used_verbatim() {
        let (langs, convs) = setup();
        let v = UniText::compose("Nehru", langs.id_of("English")).with_phoneme("xyz-not-phones");
        // Invalid bytes are filtered; remaining valid phone bytes are taken
        // as-is without re-conversion.
        let ps = convs.phonemes_of(&v);
        assert_ne!(ps.to_ipa(), "nehru");
    }

    #[test]
    fn materialize_fills_cache_once() {
        let (langs, convs) = setup();
        let mut v = UniText::compose("Nehru", langs.id_of("English"));
        convs.materialize(&mut v);
        let first = v.phoneme().unwrap().to_owned();
        convs.materialize(&mut v); // no-op
        assert_eq!(v.phoneme().unwrap(), first);
        assert_eq!(
            PhonemeString::from_bytes(first.as_bytes()).to_ipa(),
            "nehru"
        );
    }

    #[test]
    fn unknown_language_yields_empty() {
        let (_, convs) = setup();
        let v = UniText::compose("whatever", LangId(999));
        assert!(convs.phonemes_of(&v).is_empty());
    }
}
