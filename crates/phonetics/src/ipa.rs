//! The canonical phonemic alphabet.
//!
//! The paper converts every multilingual string into a phonemic string over
//! a canonical IPA alphabet \[25\] and matches in that domain.  We use a
//! compact IPA subset in which each phone occupies exactly one byte; a
//! [`PhonemeString`] is therefore a plain `Vec<u8>` with phone semantics.
//!
//! Design choices (documented because they shape matching quality):
//!
//! * **Aspiration is folded** (kʰ → k): Indic scripts distinguish aspirated
//!   stops, Latin orthography doesn't; folding makes cross-script homophones
//!   land near each other, which is the whole point of ψ.
//! * **Vowel length is folded** (aː → a) for the same reason.
//! * **Retroflex consonants are kept distinct** (ʈ ɖ ɳ ɭ ɻ): they are
//!   phonemic in the Indic languages the paper evaluates and folding them
//!   would collapse genuinely different names.

use std::fmt;

/// One phone of the canonical alphabet.  The `u8` representation is the
/// on-disk/in-tuple encoding.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u8)]
pub enum Phone {
    // ---- vowels ----
    A = b'a',
    E = b'e',
    I = b'i',
    O = b'o',
    U = b'u',
    /// Near-open front vowel (cat).
    Ae = b'@',
    /// Schwa.
    Schwa = b'x',
    /// Open-mid back rounded (caught).
    Oo = b'c',
    // ---- diphthong second elements are spelled out as two phones ----

    // ---- stops ----
    P = b'p',
    B = b'b',
    T = b't',
    D = b'd',
    /// Retroflex voiceless stop ʈ.
    Tt = b'T',
    /// Retroflex voiced stop ɖ.
    Dd = b'D',
    K = b'k',
    G = b'g',
    // ---- affricates ----
    /// tʃ (church).
    Ch = b'C',
    /// dʒ (judge).
    J = b'J',
    // ---- fricatives ----
    F = b'f',
    V = b'v',
    S = b's',
    Z = b'z',
    /// ʃ (ship).
    Sh = b'S',
    /// ʒ (vision).
    Zh = b'Z',
    /// θ (thin).
    Th = b'H',
    /// ð (this).
    Dh = b'Q',
    H = b'h',
    // ---- nasals ----
    M = b'm',
    N = b'n',
    /// Retroflex nasal ɳ.
    Nn = b'N',
    /// Velar nasal ŋ.
    Ng = b'G',
    /// Palatal nasal ɲ.
    Ny = b'Y',
    // ---- liquids / approximants ----
    L = b'l',
    /// Retroflex lateral ɭ.
    Ll = b'L',
    R = b'r',
    /// Retroflex approximant ɻ (Tamil ழ).
    Rr = b'R',
    /// Palatal approximant j (yes).
    Yy = b'y',
    W = b'w',
    /// Labiodental approximant ʋ (Indic व).
    Vv = b'V',
}

impl Phone {
    /// The byte encoding of this phone.
    #[inline]
    pub fn byte(self) -> u8 {
        self as u8
    }

    /// Decode a byte back into a phone; `None` for bytes that are not part
    /// of the alphabet.  Constant-time via a 256-entry table — this sits on
    /// the per-comparison hot path of ψ joins.
    #[inline]
    pub fn from_byte(b: u8) -> Option<Phone> {
        LUT[b as usize]
    }

    /// True for vowel phones.
    pub fn is_vowel(self) -> bool {
        matches!(
            self,
            Phone::A
                | Phone::E
                | Phone::I
                | Phone::O
                | Phone::U
                | Phone::Ae
                | Phone::Schwa
                | Phone::Oo
        )
    }

    /// True for nasal consonants.
    pub fn is_nasal(self) -> bool {
        matches!(
            self,
            Phone::M | Phone::N | Phone::Nn | Phone::Ng | Phone::Ny
        )
    }

    /// IPA glyph(s) for display.
    pub fn ipa(self) -> &'static str {
        match self {
            Phone::A => "a",
            Phone::E => "e",
            Phone::I => "i",
            Phone::O => "o",
            Phone::U => "u",
            Phone::Ae => "æ",
            Phone::Schwa => "ə",
            Phone::Oo => "ɔ",
            Phone::P => "p",
            Phone::B => "b",
            Phone::T => "t",
            Phone::D => "d",
            Phone::Tt => "ʈ",
            Phone::Dd => "ɖ",
            Phone::K => "k",
            Phone::G => "ɡ",
            Phone::Ch => "tʃ",
            Phone::J => "dʒ",
            Phone::F => "f",
            Phone::V => "v",
            Phone::S => "s",
            Phone::Z => "z",
            Phone::Sh => "ʃ",
            Phone::Zh => "ʒ",
            Phone::Th => "θ",
            Phone::Dh => "ð",
            Phone::H => "h",
            Phone::M => "m",
            Phone::N => "n",
            Phone::Nn => "ɳ",
            Phone::Ng => "ŋ",
            Phone::Ny => "ɲ",
            Phone::L => "l",
            Phone::Ll => "ɭ",
            Phone::R => "r",
            Phone::Rr => "ɻ",
            Phone::Yy => "j",
            Phone::W => "w",
            Phone::Vv => "ʋ",
        }
    }
}

/// Every phone of the alphabet; `ALL.len()` is the Σ (alphabet size)
/// parameter of the paper's cost models (Table 2).
pub const ALL: &[Phone] = &[
    Phone::A,
    Phone::E,
    Phone::I,
    Phone::O,
    Phone::U,
    Phone::Ae,
    Phone::Schwa,
    Phone::Oo,
    Phone::P,
    Phone::B,
    Phone::T,
    Phone::D,
    Phone::Tt,
    Phone::Dd,
    Phone::K,
    Phone::G,
    Phone::Ch,
    Phone::J,
    Phone::F,
    Phone::V,
    Phone::S,
    Phone::Z,
    Phone::Sh,
    Phone::Zh,
    Phone::Th,
    Phone::Dh,
    Phone::H,
    Phone::M,
    Phone::N,
    Phone::Nn,
    Phone::Ng,
    Phone::Ny,
    Phone::L,
    Phone::Ll,
    Phone::R,
    Phone::Rr,
    Phone::Yy,
    Phone::W,
    Phone::Vv,
];

/// Size of the phonemic alphabet (the paper's Σ).
pub const ALPHABET_SIZE: usize = ALL.len();

/// Byte → phone decode table.
static LUT: [Option<Phone>; 256] = {
    let mut t = [None; 256];
    let mut i = 0;
    while i < ALL.len() {
        t[ALL[i] as u8 as usize] = Some(ALL[i]);
        i += 1;
    }
    t
};

/// A phonemic string: a sequence of phones, stored as raw bytes.
///
/// The byte representation is what the engine stores in the optional third
/// component of `UniText` tuples and what the M-Tree indexes; the edit
/// distance in [`crate::distance`] operates directly on these bytes.
#[derive(Debug, Clone, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PhonemeString(Vec<u8>);

impl PhonemeString {
    /// Empty phoneme string.
    pub fn new() -> Self {
        PhonemeString(Vec::new())
    }

    /// Construct from raw phone bytes.  Bytes that are not valid phone
    /// encodings are dropped — this makes deserialization total, which
    /// matters when reading possibly-stale materialized phonemes from disk.
    pub fn from_bytes(bytes: &[u8]) -> Self {
        PhonemeString(
            bytes
                .iter()
                .copied()
                .filter(|&b| Phone::from_byte(b).is_some())
                .collect(),
        )
    }

    /// Append one phone.
    #[inline]
    pub fn push(&mut self, p: Phone) {
        self.0.push(p.byte());
    }

    /// Append all phones of another phoneme string.
    pub fn extend_from(&mut self, other: &PhonemeString) {
        self.0.extend_from_slice(&other.0);
    }

    /// The raw byte view (for storage, hashing, distance computation).
    #[inline]
    pub fn as_bytes(&self) -> &[u8] {
        &self.0
    }

    /// Number of phones.
    #[inline]
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True when there are no phones.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Iterate over decoded phones.
    pub fn phones(&self) -> impl Iterator<Item = Phone> + '_ {
        self.0.iter().filter_map(|&b| Phone::from_byte(b))
    }

    /// Last phone, if any.
    pub fn last(&self) -> Option<Phone> {
        self.0.last().and_then(|&b| Phone::from_byte(b))
    }

    /// Remove and return the last phone.
    pub fn pop(&mut self) -> Option<Phone> {
        self.0.pop().and_then(Phone::from_byte)
    }

    /// Render as IPA for humans (`/nehru/` style, without the slashes).
    pub fn to_ipa(&self) -> String {
        self.phones().map(|p| p.ipa()).collect()
    }
}

impl FromIterator<Phone> for PhonemeString {
    fn from_iter<T: IntoIterator<Item = Phone>>(iter: T) -> Self {
        PhonemeString(iter.into_iter().map(|p| p.byte()).collect())
    }
}

impl fmt::Display for PhonemeString {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "/{}/", self.to_ipa())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phone_bytes_are_unique() {
        let mut seen = std::collections::HashSet::new();
        for p in ALL {
            assert!(seen.insert(p.byte()), "duplicate byte for {p:?}");
        }
        assert_eq!(seen.len(), ALPHABET_SIZE);
    }

    #[test]
    fn byte_roundtrip() {
        for &p in ALL {
            assert_eq!(Phone::from_byte(p.byte()), Some(p));
        }
        assert_eq!(Phone::from_byte(0), None);
        assert_eq!(Phone::from_byte(b'!'), None);
    }

    #[test]
    fn from_bytes_drops_invalid() {
        let ps = PhonemeString::from_bytes(b"n!e h?r\xffu");
        assert_eq!(ps.to_ipa(), "nehru");
    }

    #[test]
    fn push_pop_and_len() {
        let mut ps = PhonemeString::new();
        assert!(ps.is_empty());
        ps.push(Phone::N);
        ps.push(Phone::E);
        assert_eq!(ps.len(), 2);
        assert_eq!(ps.pop(), Some(Phone::E));
        assert_eq!(ps.last(), Some(Phone::N));
    }

    #[test]
    fn vowel_and_nasal_classification() {
        assert!(Phone::A.is_vowel());
        assert!(Phone::Schwa.is_vowel());
        assert!(!Phone::K.is_vowel());
        assert!(Phone::Ng.is_nasal());
        assert!(!Phone::L.is_nasal());
    }

    #[test]
    fn display_is_ipa_between_slashes() {
        let ps: PhonemeString = [Phone::N, Phone::E, Phone::H, Phone::R, Phone::U]
            .into_iter()
            .collect();
        assert_eq!(format!("{ps}"), "/nehru/");
    }

    #[test]
    fn affricate_ipa_is_multichar() {
        let ps: PhonemeString = [Phone::Ch, Phone::A].into_iter().collect();
        assert_eq!(ps.to_ipa(), "tʃa");
        assert_eq!(ps.len(), 2); // still two phones
    }
}
