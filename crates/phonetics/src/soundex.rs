//! Soundex — the classic phonetic-code baseline.
//!
//! The paper's related work cites Zobel & Dart's phonetic-matching study
//! \[20\]; Soundex is the canonical pre-edit-distance technique and serves
//! as the matching-quality baseline for the `quality_lexequal` harness:
//! unlike ψ it has no tunable threshold, collapses heavily, and only works
//! on Latin-script input — which is precisely why a cross-lingual operator
//! needs the phoneme + edit-distance design.

/// Classic 4-character Soundex code (`W252`-style).  Non-ASCII and
/// non-alphabetic characters are ignored; an empty input yields `"0000"`.
pub fn soundex(name: &str) -> String {
    let letters: Vec<char> = name
        .chars()
        .filter(|c| c.is_ascii_alphabetic())
        .map(|c| c.to_ascii_uppercase())
        .collect();
    let Some(&first) = letters.first() else {
        return "0000".to_string();
    };
    let code = |c: char| -> u8 {
        match c {
            'B' | 'F' | 'P' | 'V' => 1,
            'C' | 'G' | 'J' | 'K' | 'Q' | 'S' | 'X' | 'Z' => 2,
            'D' | 'T' => 3,
            'L' => 4,
            'M' | 'N' => 5,
            'R' => 6,
            _ => 0, // vowels + H/W/Y
        }
    };
    let mut out = String::with_capacity(4);
    out.push(first);
    let mut prev = code(first);
    for &c in &letters[1..] {
        let d = code(c);
        // H and W are transparent: they do not reset the previous code.
        if c == 'H' || c == 'W' {
            continue;
        }
        if d != 0 && d != prev {
            out.push((b'0' + d) as char);
            if out.len() == 4 {
                break;
            }
        }
        prev = d;
    }
    while out.len() < 4 {
        out.push('0');
    }
    out
}

/// Soundex equality — the baseline "match" predicate.
pub fn soundex_matches(a: &str, b: &str) -> bool {
    soundex(a) == soundex(b)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn textbook_codes() {
        assert_eq!(soundex("Robert"), "R163");
        assert_eq!(soundex("Rupert"), "R163");
        assert_eq!(soundex("Ashcraft"), "A261");
        assert_eq!(soundex("Ashcroft"), "A261");
        assert_eq!(soundex("Tymczak"), "T522");
        assert_eq!(soundex("Pfister"), "P236");
    }

    #[test]
    fn known_name_pairs() {
        assert!(soundex_matches("Smith", "Smyth"));
        assert!(soundex_matches("Meyer", "Meier"));
        assert!(!soundex_matches("Nehru", "Gandhi"));
    }

    #[test]
    fn non_latin_input_degenerates() {
        // Soundex cannot see non-ASCII scripts at all — the baseline's
        // fundamental limitation for multilingual data.
        assert_eq!(soundex("நேரு"), "0000");
        assert_eq!(soundex("नेहरू"), "0000");
        assert_eq!(soundex(""), "0000");
    }

    #[test]
    fn padding_and_truncation() {
        assert_eq!(soundex("A"), "A000");
        assert_eq!(soundex("Abcdefghijklmnop").len(), 4);
    }
}
