//! English grapheme-to-phoneme rules.
//!
//! A names-oriented subset of the classic NRL English text-to-phoneme rules:
//! digraphs and common letter contexts are handled; rare exceptions are not.
//! Perfect lexical accuracy is not required — ψ matches with an edit-distance
//! threshold precisely because G2P (and romanization itself) is noisy.

use crate::ipa::Phone;
use crate::ruleset::{Ctx, Rule, RuleSet};

use Ctx::{Boundary as B, Consonant as C, Lit, Vowel as V};
use Phone::*;

/// Build the English rule set.
pub fn english_rules() -> RuleSet {
    RuleSet::new(vec![
        // ---------- multi-letter graphemes (must precede single letters) ----------
        Rule {
            left: &[],
            pattern: "tion",
            right: &[],
            output: &[Sh, Schwa, N],
        },
        Rule {
            left: &[],
            pattern: "sion",
            right: &[V],
            output: &[Zh, Schwa, N],
        },
        Rule {
            left: &[],
            pattern: "sion",
            right: &[],
            output: &[Sh, Schwa, N],
        },
        Rule {
            left: &[],
            pattern: "ough",
            right: &[B],
            output: &[O],
        },
        Rule {
            left: &[],
            pattern: "augh",
            right: &[],
            output: &[Oo],
        },
        Rule {
            left: &[],
            pattern: "igh",
            right: &[],
            output: &[A, I],
        },
        Rule {
            left: &[],
            pattern: "eigh",
            right: &[],
            output: &[E, I],
        },
        Rule {
            left: &[],
            pattern: "sch",
            right: &[],
            output: &[Sh],
        },
        Rule {
            left: &[],
            pattern: "tch",
            right: &[],
            output: &[Ch],
        },
        Rule {
            left: &[],
            pattern: "ch",
            right: &[],
            output: &[Ch],
        },
        Rule {
            left: &[],
            pattern: "sh",
            right: &[],
            output: &[Sh],
        },
        Rule {
            left: &[],
            pattern: "ph",
            right: &[],
            output: &[F],
        },
        Rule {
            left: &[],
            pattern: "th",
            right: &[],
            output: &[Th],
        },
        Rule {
            left: &[],
            pattern: "gh",
            right: &[V],
            output: &[G],
        },
        Rule {
            left: &[],
            pattern: "gh",
            right: &[],
            output: &[],
        }, // silent (night handled above)
        Rule {
            left: &[],
            pattern: "wh",
            right: &[],
            output: &[W],
        },
        Rule {
            left: &[B],
            pattern: "kn",
            right: &[],
            output: &[N],
        },
        Rule {
            left: &[B],
            pattern: "gn",
            right: &[],
            output: &[N],
        },
        Rule {
            left: &[B],
            pattern: "ps",
            right: &[],
            output: &[S],
        },
        Rule {
            left: &[B],
            pattern: "wr",
            right: &[],
            output: &[R],
        },
        Rule {
            left: &[],
            pattern: "ck",
            right: &[],
            output: &[K],
        },
        Rule {
            left: &[],
            pattern: "dge",
            right: &[],
            output: &[J],
        },
        Rule {
            left: &[],
            pattern: "ng",
            right: &[B],
            output: &[Ng],
        },
        Rule {
            left: &[],
            pattern: "ng",
            right: &[],
            output: &[Ng, G],
        },
        Rule {
            left: &[],
            pattern: "qu",
            right: &[],
            output: &[K, W],
        },
        Rule {
            left: &[],
            pattern: "sc",
            right: &[Lit('e')],
            output: &[S],
        },
        Rule {
            left: &[],
            pattern: "sc",
            right: &[Lit('i')],
            output: &[S],
        },
        // ---------- vowel digraphs ----------
        Rule {
            left: &[],
            pattern: "ee",
            right: &[],
            output: &[I],
        },
        Rule {
            left: &[],
            pattern: "ea",
            right: &[],
            output: &[I],
        },
        Rule {
            left: &[],
            pattern: "oo",
            right: &[],
            output: &[U],
        },
        Rule {
            left: &[],
            pattern: "ou",
            right: &[],
            output: &[A, U],
        },
        Rule {
            left: &[],
            pattern: "ow",
            right: &[B],
            output: &[O],
        },
        Rule {
            left: &[],
            pattern: "ow",
            right: &[],
            output: &[A, U],
        },
        Rule {
            left: &[],
            pattern: "oa",
            right: &[],
            output: &[O],
        },
        Rule {
            left: &[],
            pattern: "oi",
            right: &[],
            output: &[Oo, I],
        },
        Rule {
            left: &[],
            pattern: "oy",
            right: &[],
            output: &[Oo, I],
        },
        Rule {
            left: &[],
            pattern: "ai",
            right: &[],
            output: &[E, I],
        },
        Rule {
            left: &[],
            pattern: "ay",
            right: &[],
            output: &[E, I],
        },
        Rule {
            left: &[],
            pattern: "au",
            right: &[],
            output: &[Oo],
        },
        Rule {
            left: &[],
            pattern: "aw",
            right: &[],
            output: &[Oo],
        },
        Rule {
            left: &[],
            pattern: "ie",
            right: &[B],
            output: &[A, I],
        },
        Rule {
            left: &[],
            pattern: "ie",
            right: &[],
            output: &[I],
        },
        Rule {
            left: &[],
            pattern: "ei",
            right: &[],
            output: &[E, I],
        },
        Rule {
            left: &[],
            pattern: "ey",
            right: &[B],
            output: &[I],
        },
        Rule {
            left: &[],
            pattern: "eu",
            right: &[],
            output: &[Yy, U],
        },
        Rule {
            left: &[],
            pattern: "ew",
            right: &[],
            output: &[Yy, U],
        },
        Rule {
            left: &[],
            pattern: "ue",
            right: &[B],
            output: &[U],
        },
        // ---------- consonants ----------
        Rule {
            left: &[],
            pattern: "b",
            right: &[Lit('b')],
            output: &[],
        }, // geminate
        Rule {
            left: &[],
            pattern: "b",
            right: &[],
            output: &[Phone::B],
        },
        Rule {
            left: &[],
            pattern: "c",
            right: &[Lit('c')],
            output: &[],
        },
        Rule {
            left: &[],
            pattern: "c",
            right: &[Lit('e')],
            output: &[S],
        },
        Rule {
            left: &[],
            pattern: "c",
            right: &[Lit('i')],
            output: &[S],
        },
        Rule {
            left: &[],
            pattern: "c",
            right: &[Lit('y')],
            output: &[S],
        },
        Rule {
            left: &[],
            pattern: "c",
            right: &[],
            output: &[K],
        },
        Rule {
            left: &[],
            pattern: "d",
            right: &[Lit('d')],
            output: &[],
        },
        Rule {
            left: &[],
            pattern: "d",
            right: &[],
            output: &[D],
        },
        Rule {
            left: &[],
            pattern: "f",
            right: &[Lit('f')],
            output: &[],
        },
        Rule {
            left: &[],
            pattern: "f",
            right: &[],
            output: &[F],
        },
        Rule {
            left: &[],
            pattern: "g",
            right: &[Lit('g')],
            output: &[],
        },
        Rule {
            left: &[],
            pattern: "g",
            right: &[Lit('e')],
            output: &[J],
        },
        Rule {
            left: &[],
            pattern: "g",
            right: &[Lit('i')],
            output: &[J],
        },
        Rule {
            left: &[],
            pattern: "g",
            right: &[],
            output: &[G],
        },
        Rule {
            left: &[],
            pattern: "h",
            right: &[],
            output: &[H],
        },
        Rule {
            left: &[],
            pattern: "j",
            right: &[],
            output: &[J],
        },
        Rule {
            left: &[],
            pattern: "k",
            right: &[Lit('k')],
            output: &[],
        },
        Rule {
            left: &[],
            pattern: "k",
            right: &[],
            output: &[K],
        },
        Rule {
            left: &[],
            pattern: "l",
            right: &[Lit('l')],
            output: &[],
        },
        Rule {
            left: &[],
            pattern: "l",
            right: &[],
            output: &[L],
        },
        Rule {
            left: &[],
            pattern: "m",
            right: &[Lit('m')],
            output: &[],
        },
        Rule {
            left: &[],
            pattern: "m",
            right: &[],
            output: &[M],
        },
        Rule {
            left: &[],
            pattern: "n",
            right: &[Lit('n')],
            output: &[],
        },
        Rule {
            left: &[],
            pattern: "n",
            right: &[],
            output: &[N],
        },
        Rule {
            left: &[],
            pattern: "p",
            right: &[Lit('p')],
            output: &[],
        },
        Rule {
            left: &[],
            pattern: "p",
            right: &[],
            output: &[P],
        },
        Rule {
            left: &[],
            pattern: "r",
            right: &[Lit('r')],
            output: &[],
        },
        Rule {
            left: &[],
            pattern: "r",
            right: &[],
            output: &[R],
        },
        Rule {
            left: &[],
            pattern: "s",
            right: &[Lit('s')],
            output: &[],
        },
        Rule {
            left: &[V],
            pattern: "s",
            right: &[V],
            output: &[Z],
        },
        Rule {
            left: &[],
            pattern: "s",
            right: &[],
            output: &[S],
        },
        Rule {
            left: &[],
            pattern: "t",
            right: &[Lit('t')],
            output: &[],
        },
        Rule {
            left: &[],
            pattern: "t",
            right: &[],
            output: &[T],
        },
        Rule {
            left: &[],
            pattern: "v",
            right: &[],
            output: &[Phone::V],
        },
        Rule {
            left: &[],
            pattern: "w",
            right: &[],
            output: &[W],
        },
        Rule {
            left: &[],
            pattern: "x",
            right: &[],
            output: &[K, S],
        },
        Rule {
            left: &[B],
            pattern: "y",
            right: &[V],
            output: &[Yy],
        },
        Rule {
            left: &[],
            pattern: "y",
            right: &[B],
            output: &[I],
        },
        Rule {
            left: &[],
            pattern: "y",
            right: &[],
            output: &[I],
        },
        Rule {
            left: &[],
            pattern: "z",
            right: &[Lit('z')],
            output: &[],
        },
        Rule {
            left: &[],
            pattern: "z",
            right: &[],
            output: &[Z],
        },
        // ---------- single vowels ----------
        // magic-e lengthening: a_e -> eɪ (approximated e i)
        Rule {
            left: &[],
            pattern: "a",
            right: &[C, Lit('e'), B],
            output: &[E, I],
        },
        Rule {
            left: &[],
            pattern: "i",
            right: &[C, Lit('e'), B],
            output: &[A, I],
        },
        Rule {
            left: &[],
            pattern: "o",
            right: &[C, Lit('e'), B],
            output: &[O],
        },
        Rule {
            left: &[],
            pattern: "u",
            right: &[C, Lit('e'), B],
            output: &[U],
        },
        Rule {
            left: &[],
            pattern: "e",
            right: &[B],
            output: &[],
        }, // final silent e
        Rule {
            left: &[],
            pattern: "a",
            right: &[B],
            output: &[A],
        },
        Rule {
            left: &[],
            pattern: "a",
            right: &[],
            output: &[A],
        },
        Rule {
            left: &[],
            pattern: "e",
            right: &[],
            output: &[E],
        },
        Rule {
            left: &[],
            pattern: "i",
            right: &[],
            output: &[I],
        },
        Rule {
            left: &[],
            pattern: "o",
            right: &[],
            output: &[O],
        },
        Rule {
            left: &[],
            pattern: "u",
            right: &[],
            output: &[U],
        },
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ipa(s: &str) -> String {
        english_rules().convert(s).to_ipa()
    }

    #[test]
    fn nehru() {
        assert_eq!(ipa("Nehru"), "nehru");
    }

    #[test]
    fn digraphs() {
        assert_eq!(ipa("church"), "tʃurtʃ");
        assert_eq!(ipa("shah"), "ʃah");
        assert_eq!(ipa("philip"), "filip");
    }

    #[test]
    fn silent_letters() {
        assert_eq!(ipa("knight"), "nait");
        assert_eq!(ipa("wright"), "rait");
    }

    #[test]
    fn c_softening() {
        assert_eq!(ipa("cent"), "sent");
        assert_eq!(ipa("cat"), "kat");
        assert_eq!(ipa("cycle"), "sikl"); // c+y -> s
    }

    #[test]
    fn geminates_collapse() {
        assert_eq!(ipa("miller"), ipa("miler"));
        assert_eq!(ipa("anna"), ipa("ana"));
    }

    #[test]
    fn magic_e() {
        assert_eq!(ipa("kate"), "keit");
        assert_eq!(ipa("mike"), "maik");
    }

    #[test]
    fn intervocalic_s_voices() {
        assert_eq!(ipa("rosa"), "roza");
        assert_eq!(ipa("sun"), "sun");
    }

    #[test]
    fn names_are_stable() {
        // Homophone pairs should convert to nearby strings.
        for (a, b) in [
            ("Geoffrey", "Jeffrey"),
            ("Catherine", "Katherine"),
            ("Meier", "Meyer"),
        ] {
            let (pa, pb) = (ipa(a), ipa(b));
            assert!(
                crate::distance::edit_distance(pa.as_bytes(), pb.as_bytes()) <= 2,
                "{a}={pa} vs {b}={pb}"
            );
        }
    }
}
