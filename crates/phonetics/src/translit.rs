//! Romanized-name → Indic-script transliteration.
//!
//! The paper's ψ experiments use a pre-tagged multilingual names dataset
//! (§5.1) which we cannot obtain; the data generator fabricates one by
//! transliterating romanized names into Devanagari, Tamil and Kannada.
//! The transliterator is intentionally *phonetic*: it goes through the same
//! romanization conventions people actually use, so the fabricated dataset
//! has the same cross-script homophone structure as real tagged data.
//!
//! Transliteration is consonant-cluster aware: `ramesh` becomes र(a)मे(e)श
//! with correct matras and viramas, such that converting the output back
//! through [`crate::indic`] yields a phoneme string close to the English
//! G2P of the input — that round-trip property is tested here and is what
//! makes LexEQUAL behave on the generated data the way the paper reports.

use crate::indic::IndicScript;

/// A consonant's spelling in the three target scripts.
struct Cons {
    latin: &'static str,
    deva: char,
    tamil: char,
    kannada: char,
}

/// A vowel's independent form and matra in the three target scripts.
/// Empty char (`'\0'`) marks "inherent vowel — no matra".
struct Vowel {
    latin: &'static str,
    deva: (char, char),
    tamil: (char, char),
    kannada: (char, char),
}

// Longest-match-first tables.
const CONSONANTS: &[Cons] = &[
    Cons {
        latin: "ch",
        deva: 'च',
        tamil: 'ச',
        kannada: 'ಚ',
    },
    Cons {
        latin: "sh",
        deva: 'श',
        tamil: 'ஷ',
        kannada: 'ಶ',
    },
    Cons {
        latin: "th",
        deva: 'त',
        tamil: 'த',
        kannada: 'ತ',
    },
    Cons {
        latin: "dh",
        deva: 'द',
        tamil: 'த',
        kannada: 'ದ',
    },
    Cons {
        latin: "bh",
        deva: 'भ',
        tamil: 'ப',
        kannada: 'ಭ',
    },
    Cons {
        latin: "ph",
        deva: 'फ',
        tamil: 'ப',
        kannada: 'ಫ',
    },
    Cons {
        latin: "kh",
        deva: 'ख',
        tamil: 'க',
        kannada: 'ಖ',
    },
    Cons {
        latin: "gh",
        deva: 'घ',
        tamil: 'க',
        kannada: 'ಘ',
    },
    Cons {
        latin: "jh",
        deva: 'झ',
        tamil: 'ஜ',
        kannada: 'ಝ',
    },
    Cons {
        latin: "k",
        deva: 'क',
        tamil: 'க',
        kannada: 'ಕ',
    },
    Cons {
        latin: "g",
        deva: 'ग',
        tamil: 'க',
        kannada: 'ಗ',
    },
    Cons {
        latin: "c",
        deva: 'क',
        tamil: 'க',
        kannada: 'ಕ',
    },
    Cons {
        latin: "j",
        deva: 'ज',
        tamil: 'ஜ',
        kannada: 'ಜ',
    },
    Cons {
        latin: "t",
        deva: 'त',
        tamil: 'த',
        kannada: 'ತ',
    },
    Cons {
        latin: "d",
        deva: 'द',
        tamil: 'த',
        kannada: 'ದ',
    },
    Cons {
        latin: "n",
        deva: 'न',
        tamil: 'ந',
        kannada: 'ನ',
    },
    Cons {
        latin: "p",
        deva: 'प',
        tamil: 'ப',
        kannada: 'ಪ',
    },
    Cons {
        latin: "b",
        deva: 'ब',
        tamil: 'ப',
        kannada: 'ಬ',
    },
    Cons {
        latin: "f",
        deva: 'फ',
        tamil: 'ப',
        kannada: 'ಫ',
    },
    Cons {
        latin: "m",
        deva: 'म',
        tamil: 'ம',
        kannada: 'ಮ',
    },
    Cons {
        latin: "y",
        deva: 'य',
        tamil: 'ய',
        kannada: 'ಯ',
    },
    Cons {
        latin: "r",
        deva: 'र',
        tamil: 'ர',
        kannada: 'ರ',
    },
    Cons {
        latin: "l",
        deva: 'ल',
        tamil: 'ல',
        kannada: 'ಲ',
    },
    Cons {
        latin: "v",
        deva: 'व',
        tamil: 'வ',
        kannada: 'ವ',
    },
    Cons {
        latin: "w",
        deva: 'व',
        tamil: 'வ',
        kannada: 'ವ',
    },
    Cons {
        latin: "s",
        deva: 'स',
        tamil: 'ஸ',
        kannada: 'ಸ',
    },
    Cons {
        latin: "z",
        deva: 'ज',
        tamil: 'ஜ',
        kannada: 'ಜ',
    },
    Cons {
        latin: "h",
        deva: 'ह',
        tamil: 'ஹ',
        kannada: 'ಹ',
    },
    Cons {
        latin: "x",
        deva: 'स',
        tamil: 'ஸ',
        kannada: 'ಸ',
    },
    Cons {
        latin: "q",
        deva: 'क',
        tamil: 'க',
        kannada: 'ಕ',
    },
];

const VOWELS: &[Vowel] = &[
    Vowel {
        latin: "aa",
        deva: ('आ', '\u{093E}'),
        tamil: ('ஆ', '\u{0BBE}'),
        kannada: ('ಆ', '\u{0CBE}'),
    },
    Vowel {
        latin: "ee",
        deva: ('ई', '\u{0940}'),
        tamil: ('ஈ', '\u{0BC0}'),
        kannada: ('ಈ', '\u{0CC0}'),
    },
    Vowel {
        latin: "ii",
        deva: ('ई', '\u{0940}'),
        tamil: ('ஈ', '\u{0BC0}'),
        kannada: ('ಈ', '\u{0CC0}'),
    },
    Vowel {
        latin: "oo",
        deva: ('ऊ', '\u{0942}'),
        tamil: ('ஊ', '\u{0BC2}'),
        kannada: ('ಊ', '\u{0CC2}'),
    },
    Vowel {
        latin: "uu",
        deva: ('ऊ', '\u{0942}'),
        tamil: ('ஊ', '\u{0BC2}'),
        kannada: ('ಊ', '\u{0CC2}'),
    },
    Vowel {
        latin: "ai",
        deva: ('ऐ', '\u{0948}'),
        tamil: ('ஐ', '\u{0BC8}'),
        kannada: ('ಐ', '\u{0CC8}'),
    },
    Vowel {
        latin: "au",
        deva: ('औ', '\u{094C}'),
        tamil: ('ஔ', '\u{0BCC}'),
        kannada: ('ಔ', '\u{0CCC}'),
    },
    Vowel {
        latin: "a",
        deva: ('अ', '\0'),
        tamil: ('அ', '\0'),
        kannada: ('ಅ', '\0'),
    },
    Vowel {
        latin: "e",
        deva: ('ए', '\u{0947}'),
        tamil: ('ஏ', '\u{0BC7}'),
        kannada: ('ಏ', '\u{0CC7}'),
    },
    Vowel {
        latin: "i",
        deva: ('इ', '\u{093F}'),
        tamil: ('இ', '\u{0BBF}'),
        kannada: ('ಇ', '\u{0CBF}'),
    },
    Vowel {
        latin: "o",
        deva: ('ओ', '\u{094B}'),
        tamil: ('ஓ', '\u{0BCB}'),
        kannada: ('ಓ', '\u{0CCB}'),
    },
    Vowel {
        latin: "u",
        deva: ('उ', '\u{0941}'),
        tamil: ('உ', '\u{0BC1}'),
        kannada: ('ಉ', '\u{0CC1}'),
    },
];

fn virama(script: IndicScript) -> char {
    match script {
        IndicScript::Devanagari => '\u{094D}',
        IndicScript::Tamil => '\u{0BCD}',
        IndicScript::Kannada => '\u{0CCD}',
    }
}

/// Transliterate a romanized name into the given Indic script.
/// Unrecognized characters (spaces, hyphens) pass through unchanged.
pub fn to_indic(script: IndicScript, romanized: &str) -> String {
    let lower = romanized.to_lowercase();
    let chars: Vec<char> = lower.chars().collect();
    let mut out = String::with_capacity(romanized.len() * 3);
    let mut i = 0;
    // True when the previous emitted unit was a consonant whose inherent
    // vowel is still "open" (a following vowel must use matra form).
    let mut open_consonant = false;

    while i < chars.len() {
        if let Some((cons, len)) = match_table(&chars[i..], CONSONANTS) {
            if open_consonant {
                // Consonant cluster: previous consonant loses its vowel.
                out.push(virama(script));
            }
            out.push(match script {
                IndicScript::Devanagari => cons.deva,
                IndicScript::Tamil => cons.tamil,
                IndicScript::Kannada => cons.kannada,
            });
            open_consonant = true;
            i += len;
        } else if let Some((vow, len)) = match_vowel(&chars[i..]) {
            let (indep, matra) = match script {
                IndicScript::Devanagari => vow.deva,
                IndicScript::Tamil => vow.tamil,
                IndicScript::Kannada => vow.kannada,
            };
            if open_consonant {
                if matra != '\0' {
                    out.push(matra);
                }
                // 'a' after a consonant is the inherent vowel: emit nothing.
            } else {
                out.push(indep);
            }
            open_consonant = false;
            i += len;
        } else {
            if open_consonant {
                // Word-final consonant (or before punctuation): in Tamil the
                // pulli is written; Devanagari/Kannada conventionally leave
                // the inherent vowel letterform (schwa deletion is phonology,
                // not orthography) — but for *final* consonants of romanized
                // names a virama is standard in all three.
                out.push(virama(script));
                open_consonant = false;
            }
            out.push(chars[i]);
            i += 1;
        }
    }
    if open_consonant {
        match script {
            // Tamil writes the pulli on a final bare consonant.
            IndicScript::Tamil => out.push(virama(script)),
            // Hindi relies on final schwa deletion; Kannada names usually
            // end in a vowel anyway — leave the letter bare.
            IndicScript::Devanagari | IndicScript::Kannada => {}
        }
    }
    out
}

fn match_table<'t>(rest: &[char], table: &'t [Cons]) -> Option<(&'t Cons, usize)> {
    for entry in table {
        let pat: Vec<char> = entry.latin.chars().collect();
        if rest.len() >= pat.len() && rest[..pat.len()] == pat[..] {
            return Some((entry, pat.len()));
        }
    }
    None
}

fn match_vowel(rest: &[char]) -> Option<(&'static Vowel, usize)> {
    for entry in VOWELS {
        let pat: Vec<char> = entry.latin.chars().collect();
        if rest.len() >= pat.len() && rest[..pat.len()] == pat[..] {
            return Some((entry, pat.len()));
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distance::edit_distance;
    use crate::english::english_rules;
    use crate::indic::convert;

    #[test]
    fn nehru_to_devanagari() {
        assert_eq!(to_indic(IndicScript::Devanagari, "nehru"), "नेह्रु");
    }

    #[test]
    fn rama_to_all_scripts() {
        // r + aa-matra + m (final 'a' is the inherent vowel — no mark)
        assert_eq!(to_indic(IndicScript::Devanagari, "raama"), "राम");
        let t = to_indic(IndicScript::Tamil, "raama");
        assert!(t.starts_with('ர'));
        let k = to_indic(IndicScript::Kannada, "raama");
        assert!(k.starts_with('ರ'));
    }

    #[test]
    fn consonant_cluster_gets_virama() {
        // "krishna" must contain viramas for kr and shn clusters.
        let d = to_indic(IndicScript::Devanagari, "krishna");
        assert!(d.contains('\u{094D}'), "got {d}");
    }

    #[test]
    fn roundtrip_is_phonetically_close() {
        // The key property: G2P(translit(name)) ≈ G2P_en(name).
        let en = english_rules();
        for name in ["nehru", "rama", "krishna", "lata", "meena", "kumar", "sita"] {
            let en_ph = en.convert(name);
            for script in [
                IndicScript::Devanagari,
                IndicScript::Tamil,
                IndicScript::Kannada,
            ] {
                let indic_text = to_indic(script, name);
                let indic_ph = convert(script, &indic_text);
                let d = edit_distance(en_ph.as_bytes(), indic_ph.as_bytes());
                assert!(
                    d <= 3,
                    "{name} via {script:?}: en=/{}/ indic=/{}/ d={d} text={indic_text}",
                    en_ph.to_ipa(),
                    indic_ph.to_ipa()
                );
            }
        }
    }

    #[test]
    fn passthrough_of_separators() {
        let d = to_indic(IndicScript::Devanagari, "a b");
        assert!(d.contains(' '));
    }
}
