//! Levenshtein edit distance over phoneme byte strings.
//!
//! Three entry points, matching how the paper's implementation uses edit
//! distance (§3.3: "All edit-distance computations were implemented using
//! the diagonal transition algorithm", citing Navarro's survey \[16\]):
//!
//! * [`edit_distance`] — the classic O(|a|·|b|) dynamic program with a
//!   two-row rolling buffer.  Reference implementation; used by property
//!   tests as the ground truth.
//! * [`edit_distance_banded`] — threshold-bounded banded computation
//!   (Ukkonen's cut-off, the practical form of diagonal transition):
//!   O(k·min(|a|,|b|)) time.  Returns `None` when the distance exceeds `k`.
//! * [`within_distance`] — the predicate the ψ operator actually evaluates;
//!   adds the cheap length-difference pre-filter before the banded DP.
//!
//! [`DistanceBuffer`] lets hot loops (joins, index probes) reuse the DP rows
//! across millions of calls without re-allocating — per the Rust Performance
//! Book guidance on buffer reuse.

/// Reusable dynamic-programming buffer.
#[derive(Debug, Default)]
pub struct DistanceBuffer {
    prev: Vec<usize>,
    curr: Vec<usize>,
}

impl DistanceBuffer {
    /// A fresh buffer; rows grow on demand and are then reused.
    pub fn new() -> Self {
        DistanceBuffer::default()
    }

    /// Full Levenshtein distance between two byte strings.
    pub fn distance(&mut self, a: &[u8], b: &[u8]) -> usize {
        // Keep the inner loop over the shorter string: fewer cells per row.
        let (a, b) = if a.len() < b.len() { (b, a) } else { (a, b) };
        if b.is_empty() {
            return a.len();
        }
        let n = b.len();
        self.prev.clear();
        self.prev.extend(0..=n);
        self.curr.resize(n + 1, 0);
        for (i, &ca) in a.iter().enumerate() {
            self.curr[0] = i + 1;
            for (j, &cb) in b.iter().enumerate() {
                let cost = usize::from(ca != cb);
                self.curr[j + 1] = (self.prev[j] + cost)
                    .min(self.prev[j + 1] + 1)
                    .min(self.curr[j] + 1);
            }
            std::mem::swap(&mut self.prev, &mut self.curr);
        }
        self.prev[n]
    }

    /// Banded (Ukkonen cut-off) distance: compute only the diagonal band of
    /// half-width `k`.  Returns `Some(d)` when `d <= k`, `None` otherwise.
    ///
    /// Complexity O(k·min(|a|,|b|)) — this is the `k·l` term in the paper's
    /// Table 3 cost models.
    pub fn distance_within(&mut self, a: &[u8], b: &[u8], k: usize) -> Option<usize> {
        let (a, b) = if a.len() < b.len() { (b, a) } else { (a, b) };
        // |a| >= |b|; deleting the length difference alone costs this much.
        if a.len() - b.len() > k {
            return None;
        }
        if b.is_empty() {
            return if a.len() <= k { Some(a.len()) } else { None };
        }
        let n = b.len();
        const INF: usize = usize::MAX / 2;
        self.prev.clear();
        self.prev.resize(n + 1, INF);
        // Out-of-band cells must read as INF; a plain `resize` would keep
        // stale values from a previous use of this buffer.
        self.curr.clear();
        self.curr.resize(n + 1, INF);
        for (j, v) in self.prev.iter_mut().enumerate().take(k.min(n) + 1) {
            *v = j;
        }
        for (i, &ca) in a.iter().enumerate() {
            // Band for row i+1: columns j with |(i+1) - j| <= k.
            let row = i + 1;
            let lo = row.saturating_sub(k);
            let hi = (row + k).min(n);
            if lo > hi {
                return None;
            }
            // Reset only the band (plus the cell left of it).
            if lo > 0 {
                self.curr[lo - 1] = INF;
            }
            for v in &mut self.curr[lo..=hi] {
                *v = INF;
            }
            if lo == 0 {
                self.curr[0] = row;
            }
            let mut best = INF;
            let start = lo.max(1);
            for j in start..=hi {
                let cb = b[j - 1];
                let cost = usize::from(ca != cb);
                let diag = self.prev[j - 1] + cost;
                let up = self.prev[j] + 1;
                let left = self.curr[j - 1] + 1;
                let v = diag.min(up).min(left);
                self.curr[j] = v;
                if v < best {
                    best = v;
                }
            }
            if lo == 0 && self.curr[0] < best {
                best = self.curr[0];
            }
            if best > k {
                return None; // every cell in the band already exceeds k
            }
            std::mem::swap(&mut self.prev, &mut self.curr);
        }
        let d = self.prev[n];
        (d <= k).then_some(d)
    }
}

/// Longest pattern the bit-parallel kernel accepts: one bit per pattern
/// symbol in a single machine word.
pub const MYERS_MAX_PATTERN: usize = 64;

/// Bit-parallel Levenshtein kernel after Myers (1999, "A fast bit-vector
/// algorithm for approximate string matching based on dynamic
/// programming").
///
/// The pattern (≤ [`MYERS_MAX_PATTERN`] symbols) is compiled once into a
/// per-symbol position mask; each text symbol then advances the whole DP
/// column with a handful of word-wide boolean operations instead of the
/// banded DP's per-cell loop.  Phoneme strings are short (a dozen or so
/// symbols) and batch ψ evaluation compares thousands of candidate
/// strings against one constant pattern, which is exactly the shape this
/// kernel is built for.
#[derive(Debug, Clone)]
pub struct MyersMatcher {
    /// `peq[c]` has bit `i` set iff `pattern[i] == c`.
    peq: [u64; 256],
    /// Pattern length `m`, 1..=64.
    m: usize,
}

impl MyersMatcher {
    /// Compile `pattern`; `None` when it is empty or longer than
    /// [`MYERS_MAX_PATTERN`] symbols (callers fall back to the banded DP).
    pub fn new(pattern: &[u8]) -> Option<MyersMatcher> {
        if pattern.is_empty() || pattern.len() > MYERS_MAX_PATTERN {
            return None;
        }
        let mut peq = [0u64; 256];
        for (i, &c) in pattern.iter().enumerate() {
            peq[c as usize] |= 1u64 << i;
        }
        Some(MyersMatcher {
            peq,
            m: pattern.len(),
        })
    }

    /// Pattern length.
    pub fn pattern_len(&self) -> usize {
        self.m
    }

    /// Full Levenshtein distance between the compiled pattern and `text`.
    pub fn distance(&self, text: &[u8]) -> usize {
        self.run(text, usize::MAX)
            .expect("uncapped run always completes")
    }

    /// Threshold-bounded distance: `Some(d)` when `d <= k`, `None`
    /// otherwise.  Includes the same length-difference pre-filter as the
    /// banded DP plus a per-symbol lower-bound cut-off.
    pub fn distance_within(&self, text: &[u8], k: usize) -> Option<usize> {
        if self.m.abs_diff(text.len()) > k {
            return None;
        }
        self.run(text, k)
    }

    fn run(&self, text: &[u8], k: usize) -> Option<usize> {
        let m = self.m;
        let mask = 1u64 << (m - 1);
        // VP/VN encode the vertical deltas of the current DP column; the
        // column starts as 0..=m (all deltas +1).
        let mut vp = if m == 64 { !0u64 } else { (1u64 << m) - 1 };
        let mut vn = 0u64;
        let mut score = m;
        for (j, &c) in text.iter().enumerate() {
            let eq = self.peq[c as usize];
            let xv = eq | vn;
            let xh = (((eq & vp).wrapping_add(vp)) ^ vp) | eq;
            let ph = vn | !(xh | vp);
            let mh = vp & xh;
            if ph & mask != 0 {
                score += 1;
            } else if mh & mask != 0 {
                score -= 1;
            }
            let ph = (ph << 1) | 1;
            vp = (mh << 1) | !(xv | ph);
            vn = ph & xv;
            // The score drops by at most 1 per remaining text symbol; once
            // it cannot get back under k, give up early.
            let remaining = text.len() - j - 1;
            if score > k.saturating_add(remaining) {
                return None;
            }
        }
        (score <= k).then_some(score)
    }
}

/// One-shot full Levenshtein distance (allocates a fresh buffer).
pub fn edit_distance(a: &[u8], b: &[u8]) -> usize {
    DistanceBuffer::new().distance(a, b)
}

/// One-shot banded distance; `None` when the distance exceeds `k`.
pub fn edit_distance_banded(a: &[u8], b: &[u8], k: usize) -> Option<usize> {
    DistanceBuffer::new().distance_within(a, b, k)
}

/// The ψ predicate: are `a` and `b` within edit distance `k`?
#[inline]
pub fn within_distance(a: &[u8], b: &[u8], k: usize) -> bool {
    if a.len().abs_diff(b.len()) > k {
        return false;
    }
    edit_distance_banded(a, b, k).is_some()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classic_cases() {
        assert_eq!(edit_distance(b"kitten", b"sitting"), 3);
        assert_eq!(edit_distance(b"", b""), 0);
        assert_eq!(edit_distance(b"abc", b""), 3);
        assert_eq!(edit_distance(b"", b"abc"), 3);
        assert_eq!(edit_distance(b"abc", b"abc"), 0);
        assert_eq!(edit_distance(b"flaw", b"lawn"), 2);
    }

    #[test]
    fn banded_agrees_with_full_when_within() {
        let pairs: &[(&[u8], &[u8])] = &[
            (b"nehru", b"neru"),
            (b"kitten", b"sitting"),
            (b"abcdef", b"azced"),
            (b"a", b"b"),
        ];
        for &(a, b) in pairs {
            let d = edit_distance(a, b);
            for k in d..d + 3 {
                assert_eq!(
                    edit_distance_banded(a, b, k),
                    Some(d),
                    "a={a:?} b={b:?} k={k}"
                );
            }
            if d > 0 {
                assert_eq!(edit_distance_banded(a, b, d - 1), None);
            }
        }
    }

    #[test]
    fn banded_length_prefilter() {
        assert_eq!(edit_distance_banded(b"aaaaaaaaaa", b"a", 3), None);
        assert_eq!(edit_distance_banded(b"aaaa", b"a", 3), Some(3));
    }

    #[test]
    fn within_distance_predicate() {
        assert!(within_distance(b"nehru", b"neru", 2));
        assert!(!within_distance(b"nehru", b"gandhi", 2));
        assert!(within_distance(b"", b"", 0));
        assert!(!within_distance(b"ab", b"ba", 1)); // transposition costs 2
        assert!(within_distance(b"ab", b"ba", 2));
    }

    #[test]
    fn buffer_reuse_is_sound() {
        let mut buf = DistanceBuffer::new();
        // Interleave long and short computations to catch stale-row bugs.
        assert_eq!(buf.distance(b"abcdefghij", b"jihgfedcba"), 10);
        assert_eq!(buf.distance(b"a", b"a"), 0);
        assert_eq!(buf.distance_within(b"abc", b"abd", 1), Some(1));
        assert_eq!(buf.distance(b"abcdefghij", b"abcdefghij"), 0);
        assert_eq!(buf.distance_within(b"abcdefghij", b"abc", 2), None);
        assert_eq!(
            buf.distance_within(b"abcdefghij", b"abcdefghix", 5),
            Some(1)
        );
    }

    #[test]
    fn zero_threshold_is_equality() {
        assert_eq!(edit_distance_banded(b"same", b"same", 0), Some(0));
        assert_eq!(edit_distance_banded(b"same", b"sama", 0), None);
    }

    #[test]
    fn myers_classic_cases() {
        let m = MyersMatcher::new(b"kitten").unwrap();
        assert_eq!(m.distance(b"sitting"), 3);
        assert_eq!(m.distance(b"kitten"), 0);
        assert_eq!(m.distance(b""), 6);
        assert_eq!(m.distance_within(b"sitting", 3), Some(3));
        assert_eq!(m.distance_within(b"sitting", 2), None);
        assert_eq!(MyersMatcher::new(b"flaw").unwrap().distance(b"lawn"), 2);
    }

    #[test]
    fn myers_rejects_empty_and_overlong_patterns() {
        assert!(MyersMatcher::new(b"").is_none());
        let just_fits = vec![7u8; MYERS_MAX_PATTERN];
        let matcher = MyersMatcher::new(&just_fits).expect("64 symbols fit one word");
        assert_eq!(matcher.pattern_len(), 64);
        assert_eq!(matcher.distance(&just_fits), 0);
        let too_long = vec![7u8; MYERS_MAX_PATTERN + 1];
        assert!(MyersMatcher::new(&too_long).is_none());
    }

    #[test]
    fn myers_full_word_pattern_is_exact() {
        // m == 64 exercises the `!0u64` initial VP and the top-bit mask.
        let pattern: Vec<u8> = (0..64).map(|i| (i % 8) as u8).collect();
        let m = MyersMatcher::new(&pattern).unwrap();
        let mut text = pattern.clone();
        text[0] ^= 1;
        text[63] ^= 1;
        assert_eq!(m.distance(&text), edit_distance(&pattern, &text));
        assert_eq!(m.distance_within(&text, 2), Some(2));
        assert_eq!(m.distance_within(&text, 1), None);
    }

    #[test]
    fn myers_threshold_edge_d_equals_k() {
        // The acceptance boundary d == k must be inclusive, matching the
        // banded DP.
        let m = MyersMatcher::new(b"nehru").unwrap();
        let d = edit_distance(b"nehru", b"neru");
        assert_eq!(m.distance_within(b"neru", d), Some(d));
        assert_eq!(m.distance_within(b"neru", d - 1), None);
        assert_eq!(edit_distance_banded(b"nehru", b"neru", d), Some(d));
    }

    #[test]
    fn distance_is_metric_on_samples() {
        // Symmetry + triangle inequality on a small sample set — the M-Tree
        // requires metric properties of the distance function.
        let strs: &[&[u8]] = &[b"nehru", b"neru", b"nero", b"nehrul", b"gandhi", b""];
        for &a in strs {
            assert_eq!(edit_distance(a, a), 0);
            for &b in strs {
                assert_eq!(edit_distance(a, b), edit_distance(b, a));
                for &c in strs {
                    assert!(edit_distance(a, c) <= edit_distance(a, b) + edit_distance(b, c));
                }
            }
        }
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn banded_matches_full(a in proptest::collection::vec(0u8..8, 0..24),
                               b in proptest::collection::vec(0u8..8, 0..24),
                               k in 0usize..12) {
            let full = edit_distance(&a, &b);
            let banded = edit_distance_banded(&a, &b, k);
            if full <= k {
                prop_assert_eq!(banded, Some(full));
            } else {
                prop_assert_eq!(banded, None);
            }
        }

        /// The three kernels — Myers bit-parallel, banded DP, full DP —
        /// must agree on every (pattern, text, k), including patterns that
        /// straddle the 64-symbol fallback boundary and the inclusive
        /// threshold edge `d == k`.
        #[test]
        fn myers_matches_banded_and_full(a in proptest::collection::vec(0u8..8, 0..80),
                                         b in proptest::collection::vec(0u8..8, 0..80),
                                         k in 0usize..16) {
            let full = edit_distance(&a, &b);
            match MyersMatcher::new(&a) {
                Some(m) => {
                    prop_assert_eq!(m.distance(&b), full);
                    let within = m.distance_within(&b, k);
                    prop_assert_eq!(within, edit_distance_banded(&a, &b, k));
                    if full <= k {
                        prop_assert_eq!(within, Some(full));
                    } else {
                        prop_assert_eq!(within, None);
                    }
                    // Inclusive threshold edge: k == d accepts, k == d-1 rejects.
                    prop_assert_eq!(m.distance_within(&b, full), Some(full));
                    if full > 0 {
                        prop_assert_eq!(m.distance_within(&b, full - 1), None);
                    }
                }
                // > 64 symbols (or empty): callers fall back to the banded DP,
                // which must still agree with the full DP.
                None => {
                    prop_assert!(a.is_empty() || a.len() > MYERS_MAX_PATTERN);
                    let banded = edit_distance_banded(&a, &b, k);
                    if full <= k {
                        prop_assert_eq!(banded, Some(full));
                    } else {
                        prop_assert_eq!(banded, None);
                    }
                }
            }
        }

        /// Pin the fallback boundary itself: identical inputs either side
        /// of 64 symbols take different kernels but produce equal answers.
        #[test]
        fn myers_fallback_boundary(tail in proptest::collection::vec(0u8..8, 0..6),
                                   b in proptest::collection::vec(0u8..8, 56..72),
                                   k in 0usize..16) {
            for base in [MYERS_MAX_PATTERN - 1, MYERS_MAX_PATTERN, MYERS_MAX_PATTERN + 1] {
                let mut a: Vec<u8> = (0..base).map(|i| (i % 8) as u8).collect();
                a.extend_from_slice(&tail);
                let full = edit_distance(&a, &b);
                let got = match MyersMatcher::new(&a) {
                    Some(m) => m.distance_within(&b, k),
                    None => edit_distance_banded(&a, &b, k),
                };
                if full <= k {
                    prop_assert_eq!(got, Some(full), "len={}", a.len());
                } else {
                    prop_assert_eq!(got, None, "len={}", a.len());
                }
            }
        }

        #[test]
        fn triangle_inequality(a in proptest::collection::vec(0u8..6, 0..16),
                               b in proptest::collection::vec(0u8..6, 0..16),
                               c in proptest::collection::vec(0u8..6, 0..16)) {
            let ab = edit_distance(&a, &b);
            let bc = edit_distance(&b, &c);
            let ac = edit_distance(&a, &c);
            prop_assert!(ac <= ab + bc);
        }

        #[test]
        fn symmetry_and_identity(a in proptest::collection::vec(0u8..6, 0..20),
                                 b in proptest::collection::vec(0u8..6, 0..20)) {
            prop_assert_eq!(edit_distance(&a, &b), edit_distance(&b, &a));
            prop_assert_eq!(edit_distance(&a, &a), 0);
            prop_assert!((edit_distance(&a, &b) == 0) == (a == b));
        }

        #[test]
        fn bounded_by_longer_length(a in proptest::collection::vec(0u8..6, 0..20),
                                    b in proptest::collection::vec(0u8..6, 0..20)) {
            let d = edit_distance(&a, &b);
            prop_assert!(d >= a.len().abs_diff(b.len()));
            prop_assert!(d <= a.len().max(b.len()));
        }
    }
}
