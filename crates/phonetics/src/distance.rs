//! Levenshtein edit distance over phoneme byte strings.
//!
//! Three entry points, matching how the paper's implementation uses edit
//! distance (§3.3: "All edit-distance computations were implemented using
//! the diagonal transition algorithm", citing Navarro's survey \[16\]):
//!
//! * [`edit_distance`] — the classic O(|a|·|b|) dynamic program with a
//!   two-row rolling buffer.  Reference implementation; used by property
//!   tests as the ground truth.
//! * [`edit_distance_banded`] — threshold-bounded banded computation
//!   (Ukkonen's cut-off, the practical form of diagonal transition):
//!   O(k·min(|a|,|b|)) time.  Returns `None` when the distance exceeds `k`.
//! * [`within_distance`] — the predicate the ψ operator actually evaluates;
//!   adds the cheap length-difference pre-filter before the banded DP.
//!
//! [`DistanceBuffer`] lets hot loops (joins, index probes) reuse the DP rows
//! across millions of calls without re-allocating — per the Rust Performance
//! Book guidance on buffer reuse.

/// Reusable dynamic-programming buffer.
#[derive(Debug, Default)]
pub struct DistanceBuffer {
    prev: Vec<usize>,
    curr: Vec<usize>,
}

impl DistanceBuffer {
    /// A fresh buffer; rows grow on demand and are then reused.
    pub fn new() -> Self {
        DistanceBuffer::default()
    }

    /// Full Levenshtein distance between two byte strings.
    pub fn distance(&mut self, a: &[u8], b: &[u8]) -> usize {
        // Keep the inner loop over the shorter string: fewer cells per row.
        let (a, b) = if a.len() < b.len() { (b, a) } else { (a, b) };
        if b.is_empty() {
            return a.len();
        }
        let n = b.len();
        self.prev.clear();
        self.prev.extend(0..=n);
        self.curr.resize(n + 1, 0);
        for (i, &ca) in a.iter().enumerate() {
            self.curr[0] = i + 1;
            for (j, &cb) in b.iter().enumerate() {
                let cost = usize::from(ca != cb);
                self.curr[j + 1] = (self.prev[j] + cost)
                    .min(self.prev[j + 1] + 1)
                    .min(self.curr[j] + 1);
            }
            std::mem::swap(&mut self.prev, &mut self.curr);
        }
        self.prev[n]
    }

    /// Banded (Ukkonen cut-off) distance: compute only the diagonal band of
    /// half-width `k`.  Returns `Some(d)` when `d <= k`, `None` otherwise.
    ///
    /// Complexity O(k·min(|a|,|b|)) — this is the `k·l` term in the paper's
    /// Table 3 cost models.
    pub fn distance_within(&mut self, a: &[u8], b: &[u8], k: usize) -> Option<usize> {
        let (a, b) = if a.len() < b.len() { (b, a) } else { (a, b) };
        // |a| >= |b|; deleting the length difference alone costs this much.
        if a.len() - b.len() > k {
            return None;
        }
        if b.is_empty() {
            return if a.len() <= k { Some(a.len()) } else { None };
        }
        let n = b.len();
        const INF: usize = usize::MAX / 2;
        self.prev.clear();
        self.prev.resize(n + 1, INF);
        // Out-of-band cells must read as INF; a plain `resize` would keep
        // stale values from a previous use of this buffer.
        self.curr.clear();
        self.curr.resize(n + 1, INF);
        for (j, v) in self.prev.iter_mut().enumerate().take(k.min(n) + 1) {
            *v = j;
        }
        for (i, &ca) in a.iter().enumerate() {
            // Band for row i+1: columns j with |(i+1) - j| <= k.
            let row = i + 1;
            let lo = row.saturating_sub(k);
            let hi = (row + k).min(n);
            if lo > hi {
                return None;
            }
            // Reset only the band (plus the cell left of it).
            if lo > 0 {
                self.curr[lo - 1] = INF;
            }
            for v in &mut self.curr[lo..=hi] {
                *v = INF;
            }
            if lo == 0 {
                self.curr[0] = row;
            }
            let mut best = INF;
            let start = lo.max(1);
            for j in start..=hi {
                let cb = b[j - 1];
                let cost = usize::from(ca != cb);
                let diag = self.prev[j - 1] + cost;
                let up = self.prev[j] + 1;
                let left = self.curr[j - 1] + 1;
                let v = diag.min(up).min(left);
                self.curr[j] = v;
                if v < best {
                    best = v;
                }
            }
            if lo == 0 && self.curr[0] < best {
                best = self.curr[0];
            }
            if best > k {
                return None; // every cell in the band already exceeds k
            }
            std::mem::swap(&mut self.prev, &mut self.curr);
        }
        let d = self.prev[n];
        (d <= k).then_some(d)
    }
}

/// One-shot full Levenshtein distance (allocates a fresh buffer).
pub fn edit_distance(a: &[u8], b: &[u8]) -> usize {
    DistanceBuffer::new().distance(a, b)
}

/// One-shot banded distance; `None` when the distance exceeds `k`.
pub fn edit_distance_banded(a: &[u8], b: &[u8], k: usize) -> Option<usize> {
    DistanceBuffer::new().distance_within(a, b, k)
}

/// The ψ predicate: are `a` and `b` within edit distance `k`?
#[inline]
pub fn within_distance(a: &[u8], b: &[u8], k: usize) -> bool {
    if a.len().abs_diff(b.len()) > k {
        return false;
    }
    edit_distance_banded(a, b, k).is_some()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classic_cases() {
        assert_eq!(edit_distance(b"kitten", b"sitting"), 3);
        assert_eq!(edit_distance(b"", b""), 0);
        assert_eq!(edit_distance(b"abc", b""), 3);
        assert_eq!(edit_distance(b"", b"abc"), 3);
        assert_eq!(edit_distance(b"abc", b"abc"), 0);
        assert_eq!(edit_distance(b"flaw", b"lawn"), 2);
    }

    #[test]
    fn banded_agrees_with_full_when_within() {
        let pairs: &[(&[u8], &[u8])] = &[
            (b"nehru", b"neru"),
            (b"kitten", b"sitting"),
            (b"abcdef", b"azced"),
            (b"a", b"b"),
        ];
        for &(a, b) in pairs {
            let d = edit_distance(a, b);
            for k in d..d + 3 {
                assert_eq!(
                    edit_distance_banded(a, b, k),
                    Some(d),
                    "a={a:?} b={b:?} k={k}"
                );
            }
            if d > 0 {
                assert_eq!(edit_distance_banded(a, b, d - 1), None);
            }
        }
    }

    #[test]
    fn banded_length_prefilter() {
        assert_eq!(edit_distance_banded(b"aaaaaaaaaa", b"a", 3), None);
        assert_eq!(edit_distance_banded(b"aaaa", b"a", 3), Some(3));
    }

    #[test]
    fn within_distance_predicate() {
        assert!(within_distance(b"nehru", b"neru", 2));
        assert!(!within_distance(b"nehru", b"gandhi", 2));
        assert!(within_distance(b"", b"", 0));
        assert!(!within_distance(b"ab", b"ba", 1)); // transposition costs 2
        assert!(within_distance(b"ab", b"ba", 2));
    }

    #[test]
    fn buffer_reuse_is_sound() {
        let mut buf = DistanceBuffer::new();
        // Interleave long and short computations to catch stale-row bugs.
        assert_eq!(buf.distance(b"abcdefghij", b"jihgfedcba"), 10);
        assert_eq!(buf.distance(b"a", b"a"), 0);
        assert_eq!(buf.distance_within(b"abc", b"abd", 1), Some(1));
        assert_eq!(buf.distance(b"abcdefghij", b"abcdefghij"), 0);
        assert_eq!(buf.distance_within(b"abcdefghij", b"abc", 2), None);
        assert_eq!(
            buf.distance_within(b"abcdefghij", b"abcdefghix", 5),
            Some(1)
        );
    }

    #[test]
    fn zero_threshold_is_equality() {
        assert_eq!(edit_distance_banded(b"same", b"same", 0), Some(0));
        assert_eq!(edit_distance_banded(b"same", b"sama", 0), None);
    }

    #[test]
    fn distance_is_metric_on_samples() {
        // Symmetry + triangle inequality on a small sample set — the M-Tree
        // requires metric properties of the distance function.
        let strs: &[&[u8]] = &[b"nehru", b"neru", b"nero", b"nehrul", b"gandhi", b""];
        for &a in strs {
            assert_eq!(edit_distance(a, a), 0);
            for &b in strs {
                assert_eq!(edit_distance(a, b), edit_distance(b, a));
                for &c in strs {
                    assert!(edit_distance(a, c) <= edit_distance(a, b) + edit_distance(b, c));
                }
            }
        }
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn banded_matches_full(a in proptest::collection::vec(0u8..8, 0..24),
                               b in proptest::collection::vec(0u8..8, 0..24),
                               k in 0usize..12) {
            let full = edit_distance(&a, &b);
            let banded = edit_distance_banded(&a, &b, k);
            if full <= k {
                prop_assert_eq!(banded, Some(full));
            } else {
                prop_assert_eq!(banded, None);
            }
        }

        #[test]
        fn triangle_inequality(a in proptest::collection::vec(0u8..6, 0..16),
                               b in proptest::collection::vec(0u8..6, 0..16),
                               c in proptest::collection::vec(0u8..6, 0..16)) {
            let ab = edit_distance(&a, &b);
            let bc = edit_distance(&b, &c);
            let ac = edit_distance(&a, &c);
            prop_assert!(ac <= ab + bc);
        }

        #[test]
        fn symmetry_and_identity(a in proptest::collection::vec(0u8..6, 0..20),
                                 b in proptest::collection::vec(0u8..6, 0..20)) {
            prop_assert_eq!(edit_distance(&a, &b), edit_distance(&b, &a));
            prop_assert_eq!(edit_distance(&a, &a), 0);
            prop_assert!((edit_distance(&a, &b) == 0) == (a == b));
        }

        #[test]
        fn bounded_by_longer_length(a in proptest::collection::vec(0u8..6, 0..20),
                                    b in proptest::collection::vec(0u8..6, 0..20)) {
            let d = edit_distance(&a, &b);
            prop_assert!(d >= a.len().abs_diff(b.len()));
            prop_assert!(d <= a.len().max(b.len()));
        }
    }
}
