//! Spanish grapheme-to-phoneme rules.
//!
//! Spanish orthography is close to phonemic; the interesting cases for
//! name matching are the silent `h`, `ll`/`y` yeísmo, `ñ`, soft `c`/`g`,
//! `qu`/`gu` digraphs, and `j`/`x` as /x/ (folded to /h/ in our alphabet).

use crate::ipa::Phone;
use crate::ruleset::{Ctx, Rule, RuleSet};

use Ctx::Lit;
use Phone::*;

/// Build the Spanish rule set.
pub fn spanish_rules() -> RuleSet {
    RuleSet::new(vec![
        // ---------- digraphs ----------
        Rule {
            left: &[],
            pattern: "ch",
            right: &[],
            output: &[Ch],
        },
        Rule {
            left: &[],
            pattern: "ll",
            right: &[],
            output: &[Yy],
        }, // yeísmo
        Rule {
            left: &[],
            pattern: "rr",
            right: &[],
            output: &[R],
        },
        Rule {
            left: &[],
            pattern: "qu",
            right: &[],
            output: &[K],
        },
        Rule {
            left: &[],
            pattern: "gu",
            right: &[Lit('e')],
            output: &[G],
        },
        Rule {
            left: &[],
            pattern: "gu",
            right: &[Lit('i')],
            output: &[G],
        },
        Rule {
            left: &[],
            pattern: "gü",
            right: &[],
            output: &[G, W],
        },
        // ---------- consonants ----------
        Rule {
            left: &[],
            pattern: "ñ",
            right: &[],
            output: &[Ny],
        },
        Rule {
            left: &[],
            pattern: "h",
            right: &[],
            output: &[],
        }, // silent
        Rule {
            left: &[],
            pattern: "j",
            right: &[],
            output: &[H],
        }, // /x/ ≈ h
        Rule {
            left: &[],
            pattern: "g",
            right: &[Lit('e')],
            output: &[H],
        },
        Rule {
            left: &[],
            pattern: "g",
            right: &[Lit('i')],
            output: &[H],
        },
        Rule {
            left: &[],
            pattern: "g",
            right: &[Lit('é')],
            output: &[H],
        },
        Rule {
            left: &[],
            pattern: "g",
            right: &[Lit('í')],
            output: &[H],
        },
        Rule {
            left: &[],
            pattern: "g",
            right: &[],
            output: &[G],
        },
        Rule {
            left: &[],
            pattern: "c",
            right: &[Lit('e')],
            output: &[S],
        }, // seseo
        Rule {
            left: &[],
            pattern: "c",
            right: &[Lit('i')],
            output: &[S],
        },
        Rule {
            left: &[],
            pattern: "c",
            right: &[Lit('é')],
            output: &[S],
        },
        Rule {
            left: &[],
            pattern: "c",
            right: &[Lit('í')],
            output: &[S],
        },
        Rule {
            left: &[],
            pattern: "c",
            right: &[],
            output: &[K],
        },
        Rule {
            left: &[],
            pattern: "z",
            right: &[],
            output: &[S],
        }, // seseo
        Rule {
            left: &[],
            pattern: "v",
            right: &[],
            output: &[B],
        }, // betacismo
        Rule {
            left: &[],
            pattern: "b",
            right: &[],
            output: &[B],
        },
        Rule {
            left: &[],
            pattern: "x",
            right: &[],
            output: &[K, S],
        },
        Rule {
            left: &[],
            pattern: "y",
            right: &[Ctx::Boundary],
            output: &[I],
        },
        Rule {
            left: &[],
            pattern: "y",
            right: &[],
            output: &[Yy],
        },
        Rule {
            left: &[],
            pattern: "d",
            right: &[],
            output: &[D],
        },
        Rule {
            left: &[],
            pattern: "f",
            right: &[],
            output: &[F],
        },
        Rule {
            left: &[],
            pattern: "k",
            right: &[],
            output: &[K],
        },
        Rule {
            left: &[],
            pattern: "l",
            right: &[],
            output: &[L],
        },
        Rule {
            left: &[],
            pattern: "m",
            right: &[],
            output: &[M],
        },
        Rule {
            left: &[],
            pattern: "n",
            right: &[],
            output: &[N],
        },
        Rule {
            left: &[],
            pattern: "p",
            right: &[],
            output: &[P],
        },
        Rule {
            left: &[],
            pattern: "r",
            right: &[],
            output: &[R],
        },
        Rule {
            left: &[],
            pattern: "s",
            right: &[],
            output: &[S],
        },
        Rule {
            left: &[],
            pattern: "t",
            right: &[],
            output: &[T],
        },
        Rule {
            left: &[],
            pattern: "w",
            right: &[],
            output: &[W],
        },
        // ---------- vowels (accents fold) ----------
        Rule {
            left: &[],
            pattern: "á",
            right: &[],
            output: &[A],
        },
        Rule {
            left: &[],
            pattern: "é",
            right: &[],
            output: &[E],
        },
        Rule {
            left: &[],
            pattern: "í",
            right: &[],
            output: &[I],
        },
        Rule {
            left: &[],
            pattern: "ó",
            right: &[],
            output: &[O],
        },
        Rule {
            left: &[],
            pattern: "ú",
            right: &[],
            output: &[U],
        },
        Rule {
            left: &[],
            pattern: "a",
            right: &[],
            output: &[A],
        },
        Rule {
            left: &[],
            pattern: "e",
            right: &[],
            output: &[E],
        },
        Rule {
            left: &[],
            pattern: "i",
            right: &[],
            output: &[I],
        },
        Rule {
            left: &[],
            pattern: "o",
            right: &[],
            output: &[O],
        },
        Rule {
            left: &[],
            pattern: "u",
            right: &[],
            output: &[U],
        },
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ipa(s: &str) -> String {
        spanish_rules().convert(s).to_ipa()
    }

    #[test]
    fn classic_names() {
        assert_eq!(ipa("García"), "ɡarsia");
        assert_eq!(ipa("Jiménez"), "himenes");
        assert_eq!(ipa("Vázquez"), "baskes");
    }

    #[test]
    fn silent_h_and_ll() {
        assert_eq!(ipa("Hernández"), "ernandes");
        assert_eq!(ipa("Llorente"), "jorente");
    }

    #[test]
    fn enye() {
        assert_eq!(ipa("Muñoz"), "muɲos");
    }

    #[test]
    fn qu_and_gu() {
        assert_eq!(ipa("Quintero"), "kintero");
        assert_eq!(ipa("Guerrero"), "ɡerero");
    }

    #[test]
    fn v_b_merge() {
        assert_eq!(ipa("Vega"), ipa("Bega"));
    }
}
