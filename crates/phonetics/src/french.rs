//! French grapheme-to-phoneme rules.
//!
//! Names-oriented: nasal vowels are approximated by vowel+nasal sequences
//! (the canonical alphabet has no nasalized vowels), final consonants are
//! silent in the usual cases, and the common vowel digraphs are handled.

use crate::ipa::Phone;
use crate::ruleset::{Ctx, Rule, RuleSet};

use Ctx::{Boundary as B, Lit, Vowel as V};
use Phone::*;

/// Build the French rule set.
pub fn french_rules() -> RuleSet {
    RuleSet::new(vec![
        // ---------- multigraphs ----------
        Rule {
            left: &[],
            pattern: "eau",
            right: &[],
            output: &[O],
        },
        Rule {
            left: &[],
            pattern: "eaux",
            right: &[B],
            output: &[O],
        },
        Rule {
            left: &[],
            pattern: "ain",
            right: &[B],
            output: &[E, N],
        },
        Rule {
            left: &[],
            pattern: "aim",
            right: &[B],
            output: &[E, N],
        },
        Rule {
            left: &[],
            pattern: "oin",
            right: &[],
            output: &[W, E, N],
        },
        Rule {
            left: &[],
            pattern: "ien",
            right: &[B],
            output: &[Yy, E, N],
        },
        Rule {
            left: &[],
            pattern: "tion",
            right: &[B],
            output: &[S, Yy, O, N],
        },
        Rule {
            left: &[],
            pattern: "eux",
            right: &[B],
            output: &[U],
        },
        Rule {
            left: &[],
            pattern: "eu",
            right: &[],
            output: &[U],
        },
        Rule {
            left: &[],
            pattern: "oeu",
            right: &[],
            output: &[U],
        },
        Rule {
            left: &[],
            pattern: "ou",
            right: &[],
            output: &[U],
        },
        Rule {
            left: &[],
            pattern: "oi",
            right: &[],
            output: &[W, A],
        },
        Rule {
            left: &[],
            pattern: "oy",
            right: &[V],
            output: &[W, A, Yy],
        },
        Rule {
            left: &[],
            pattern: "ai",
            right: &[],
            output: &[E],
        },
        Rule {
            left: &[],
            pattern: "ei",
            right: &[],
            output: &[E],
        },
        Rule {
            left: &[],
            pattern: "au",
            right: &[],
            output: &[O],
        },
        Rule {
            left: &[],
            pattern: "an",
            right: &[B],
            output: &[A, N],
        },
        Rule {
            left: &[],
            pattern: "en",
            right: &[B],
            output: &[A, N],
        },
        Rule {
            left: &[],
            pattern: "on",
            right: &[B],
            output: &[O, N],
        },
        Rule {
            left: &[],
            pattern: "un",
            right: &[B],
            output: &[Schwa, N],
        },
        Rule {
            left: &[],
            pattern: "in",
            right: &[B],
            output: &[E, N],
        },
        Rule {
            left: &[],
            pattern: "ch",
            right: &[],
            output: &[Sh],
        },
        Rule {
            left: &[],
            pattern: "ph",
            right: &[],
            output: &[F],
        },
        Rule {
            left: &[],
            pattern: "th",
            right: &[],
            output: &[T],
        },
        Rule {
            left: &[],
            pattern: "gn",
            right: &[],
            output: &[Ny],
        },
        Rule {
            left: &[],
            pattern: "qu",
            right: &[],
            output: &[K],
        },
        Rule {
            left: &[],
            pattern: "gu",
            right: &[Lit('e')],
            output: &[G],
        },
        Rule {
            left: &[],
            pattern: "gu",
            right: &[Lit('i')],
            output: &[G],
        },
        Rule {
            left: &[],
            pattern: "ill",
            right: &[V],
            output: &[I, Yy],
        },
        Rule {
            left: &[],
            pattern: "ll",
            right: &[],
            output: &[L],
        },
        // ---------- silent finals ----------
        Rule {
            left: &[],
            pattern: "es",
            right: &[B],
            output: &[],
        },
        Rule {
            left: &[],
            pattern: "e",
            right: &[B],
            output: &[],
        },
        Rule {
            left: &[],
            pattern: "s",
            right: &[B],
            output: &[],
        },
        Rule {
            left: &[],
            pattern: "t",
            right: &[B],
            output: &[],
        },
        Rule {
            left: &[],
            pattern: "d",
            right: &[B],
            output: &[],
        },
        Rule {
            left: &[],
            pattern: "x",
            right: &[B],
            output: &[],
        },
        Rule {
            left: &[],
            pattern: "z",
            right: &[B],
            output: &[],
        },
        Rule {
            left: &[],
            pattern: "p",
            right: &[B],
            output: &[],
        },
        // ---------- consonants ----------
        Rule {
            left: &[],
            pattern: "c",
            right: &[Lit('e')],
            output: &[S],
        },
        Rule {
            left: &[],
            pattern: "c",
            right: &[Lit('i')],
            output: &[S],
        },
        Rule {
            left: &[],
            pattern: "c",
            right: &[Lit('y')],
            output: &[S],
        },
        Rule {
            left: &[],
            pattern: "ç",
            right: &[],
            output: &[S],
        },
        Rule {
            left: &[],
            pattern: "cc",
            right: &[],
            output: &[K],
        },
        Rule {
            left: &[],
            pattern: "c",
            right: &[],
            output: &[K],
        },
        Rule {
            left: &[],
            pattern: "g",
            right: &[Lit('e')],
            output: &[Zh],
        },
        Rule {
            left: &[],
            pattern: "g",
            right: &[Lit('i')],
            output: &[Zh],
        },
        Rule {
            left: &[],
            pattern: "g",
            right: &[],
            output: &[G],
        },
        Rule {
            left: &[],
            pattern: "j",
            right: &[],
            output: &[Zh],
        },
        Rule {
            left: &[],
            pattern: "h",
            right: &[],
            output: &[],
        }, // h is silent
        Rule {
            left: &[V],
            pattern: "s",
            right: &[V],
            output: &[Z],
        },
        Rule {
            left: &[],
            pattern: "ss",
            right: &[],
            output: &[S],
        },
        Rule {
            left: &[],
            pattern: "s",
            right: &[],
            output: &[S],
        },
        Rule {
            left: &[],
            pattern: "w",
            right: &[],
            output: &[Phone::V],
        },
        Rule {
            left: &[],
            pattern: "b",
            right: &[],
            output: &[Phone::B],
        },
        Rule {
            left: &[],
            pattern: "d",
            right: &[],
            output: &[D],
        },
        Rule {
            left: &[],
            pattern: "f",
            right: &[],
            output: &[F],
        },
        Rule {
            left: &[],
            pattern: "k",
            right: &[],
            output: &[K],
        },
        Rule {
            left: &[],
            pattern: "l",
            right: &[],
            output: &[L],
        },
        Rule {
            left: &[],
            pattern: "m",
            right: &[],
            output: &[M],
        },
        Rule {
            left: &[],
            pattern: "n",
            right: &[],
            output: &[N],
        },
        Rule {
            left: &[],
            pattern: "p",
            right: &[],
            output: &[P],
        },
        Rule {
            left: &[],
            pattern: "r",
            right: &[],
            output: &[R],
        },
        Rule {
            left: &[],
            pattern: "t",
            right: &[],
            output: &[T],
        },
        Rule {
            left: &[],
            pattern: "v",
            right: &[],
            output: &[Phone::V],
        },
        Rule {
            left: &[],
            pattern: "x",
            right: &[],
            output: &[K, S],
        },
        Rule {
            left: &[],
            pattern: "z",
            right: &[],
            output: &[Z],
        },
        // ---------- vowels (accented first) ----------
        Rule {
            left: &[],
            pattern: "é",
            right: &[],
            output: &[E],
        },
        Rule {
            left: &[],
            pattern: "è",
            right: &[],
            output: &[E],
        },
        Rule {
            left: &[],
            pattern: "ê",
            right: &[],
            output: &[E],
        },
        Rule {
            left: &[],
            pattern: "ë",
            right: &[],
            output: &[E],
        },
        Rule {
            left: &[],
            pattern: "à",
            right: &[],
            output: &[A],
        },
        Rule {
            left: &[],
            pattern: "â",
            right: &[],
            output: &[A],
        },
        Rule {
            left: &[],
            pattern: "î",
            right: &[],
            output: &[I],
        },
        Rule {
            left: &[],
            pattern: "ï",
            right: &[],
            output: &[I],
        },
        Rule {
            left: &[],
            pattern: "ô",
            right: &[],
            output: &[O],
        },
        Rule {
            left: &[],
            pattern: "û",
            right: &[],
            output: &[U],
        },
        Rule {
            left: &[],
            pattern: "a",
            right: &[],
            output: &[A],
        },
        Rule {
            left: &[],
            pattern: "e",
            right: &[],
            output: &[Schwa],
        },
        Rule {
            left: &[],
            pattern: "i",
            right: &[],
            output: &[I],
        },
        Rule {
            left: &[],
            pattern: "o",
            right: &[],
            output: &[O],
        },
        Rule {
            left: &[],
            pattern: "u",
            right: &[],
            output: &[U],
        },
        Rule {
            left: &[],
            pattern: "y",
            right: &[],
            output: &[I],
        },
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ipa(s: &str) -> String {
        french_rules().convert(s).to_ipa()
    }

    #[test]
    fn eau_and_silent_finals() {
        assert_eq!(ipa("Renault"), "rənol"); // final t silent; l retained by our rules
    }

    #[test]
    fn silent_h_and_soft_c() {
        assert_eq!(ipa("Hélène"), "elen");
        assert_eq!(ipa("France"), "frans");
    }

    #[test]
    fn ch_is_sh() {
        assert_eq!(ipa("Charles"), "ʃarl");
    }

    #[test]
    fn oi_is_wa() {
        assert_eq!(ipa("Benoit"), "bənwa");
    }

    #[test]
    fn temoin_nasal() {
        // "Témoin" from the paper's Example 1.
        assert_eq!(ipa("Témoin"), "temwen");
    }

    #[test]
    fn j_is_zh() {
        assert_eq!(ipa("Jean"), "ʒəan");
    }
}
