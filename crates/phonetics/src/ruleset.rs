//! NRL-style context-sensitive rewrite-rule engine for Latin-script
//! grapheme-to-phoneme conversion.
//!
//! A rule has the classic shape `L [ P ] R → phones`: when grapheme pattern
//! `P` occurs with left context `L` and right context `R`, emit `phones` and
//! advance past `P`.  Contexts are sequences of [`Ctx`] atoms; patterns are
//! literal lowercase grapheme strings.  Rules are tried in order; the first
//! match wins, so specific rules must precede general ones (e.g. `ch` before
//! `c`).  If no rule matches, the offending character is skipped — G2P is
//! total.
//!
//! This architecture is the one used by the classic Navy Research Laboratory
//! English text-to-phoneme rules, which is an adequate open substitute for
//! the Dhvani engine the paper integrated (see DESIGN.md §2).

use crate::ipa::{Phone, PhonemeString};

/// One atom of a context pattern.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Ctx {
    /// Word boundary (start for left contexts, end for right contexts).
    Boundary,
    /// Any orthographic vowel (a e i o u y).
    Vowel,
    /// Any orthographic consonant.
    Consonant,
    /// A specific literal character.
    Lit(char),
    /// One or more orthographic vowels.
    VowelPlus,
}

/// A single rewrite rule.
#[derive(Debug, Clone)]
pub struct Rule {
    /// Left context, outermost atom first (i.e. `left[0]` is furthest from
    /// the pattern).
    pub left: &'static [Ctx],
    /// The grapheme pattern (lowercase).
    pub pattern: &'static str,
    /// Right context, innermost atom first (i.e. `right[0]` is adjacent to
    /// the pattern).
    pub right: &'static [Ctx],
    /// Phones emitted when the rule fires.
    pub output: &'static [Phone],
}

/// An ordered collection of rules for one language.
#[derive(Debug, Clone)]
pub struct RuleSet {
    rules: Vec<Rule>,
}

#[inline]
fn is_orth_vowel(c: char) -> bool {
    matches!(
        c,
        'a' | 'e'
            | 'i'
            | 'o'
            | 'u'
            | 'y'
            | 'é'
            | 'è'
            | 'ê'
            | 'à'
            | 'â'
            | 'î'
            | 'ô'
            | 'û'
            | 'ë'
            | 'ï'
    )
}

#[inline]
fn is_orth_consonant(c: char) -> bool {
    c.is_alphabetic() && !is_orth_vowel(c)
}

impl RuleSet {
    /// Build a rule set.  Panics (in debug builds) if a rule has an empty
    /// pattern, which would make conversion non-terminating.
    pub fn new(rules: Vec<Rule>) -> Self {
        debug_assert!(rules.iter().all(|r| !r.pattern.is_empty()));
        RuleSet { rules }
    }

    /// Number of rules (used by tests and the cost-model calibration bench).
    pub fn len(&self) -> usize {
        self.rules.len()
    }

    /// True when the rule set contains no rules.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// Convert a word to phones.  Input is lowercased and non-alphabetic
    /// characters are treated as word boundaries (names like "De Souza"
    /// convert as two words).
    pub fn convert(&self, input: &str) -> PhonemeString {
        let lower: Vec<char> = input.to_lowercase().chars().collect();
        let mut out = PhonemeString::new();
        // Split on non-alphabetic chars so each word sees proper boundaries.
        let mut word: Vec<char> = Vec::with_capacity(lower.len());
        for &c in lower.iter().chain(std::iter::once(&' ')) {
            if c.is_alphabetic() {
                word.push(c);
            } else if !word.is_empty() {
                self.convert_word(&word, &mut out);
                word.clear();
            }
        }
        out
    }

    fn convert_word(&self, word: &[char], out: &mut PhonemeString) {
        let mut i = 0;
        while i < word.len() {
            let mut advanced = false;
            for rule in &self.rules {
                if let Some(step) = self.try_rule(rule, word, i) {
                    for &p in rule.output {
                        out.push(p);
                    }
                    i += step;
                    advanced = true;
                    break;
                }
            }
            if !advanced {
                i += 1; // unknown grapheme: skip (total function)
            }
        }
    }

    /// Check whether `rule` fires at position `i`; returns the number of
    /// characters consumed.
    fn try_rule(&self, rule: &Rule, word: &[char], i: usize) -> Option<usize> {
        let pat: Vec<char> = rule.pattern.chars().collect();
        if i + pat.len() > word.len() || word[i..i + pat.len()] != pat[..] {
            return None;
        }
        // Left context: match atoms moving leftwards from position i.
        // `rule.left` is outermost-first, so iterate it in reverse.
        let mut pos = i; // exclusive upper bound of unmatched left region
        for atom in rule.left.iter().rev() {
            match atom {
                Ctx::Boundary => {
                    if pos != 0 {
                        return None;
                    }
                }
                Ctx::Vowel => {
                    if pos == 0 || !is_orth_vowel(word[pos - 1]) {
                        return None;
                    }
                    pos -= 1;
                }
                Ctx::Consonant => {
                    if pos == 0 || !is_orth_consonant(word[pos - 1]) {
                        return None;
                    }
                    pos -= 1;
                }
                Ctx::Lit(c) => {
                    if pos == 0 || word[pos - 1] != *c {
                        return None;
                    }
                    pos -= 1;
                }
                Ctx::VowelPlus => {
                    if pos == 0 || !is_orth_vowel(word[pos - 1]) {
                        return None;
                    }
                    while pos > 0 && is_orth_vowel(word[pos - 1]) {
                        pos -= 1;
                    }
                }
            }
        }
        // Right context: match atoms moving rightwards from the pattern end.
        let mut pos = i + pat.len();
        for atom in rule.right.iter() {
            match atom {
                Ctx::Boundary => {
                    if pos != word.len() {
                        return None;
                    }
                }
                Ctx::Vowel => {
                    if pos >= word.len() || !is_orth_vowel(word[pos]) {
                        return None;
                    }
                    pos += 1;
                }
                Ctx::Consonant => {
                    if pos >= word.len() || !is_orth_consonant(word[pos]) {
                        return None;
                    }
                    pos += 1;
                }
                Ctx::Lit(c) => {
                    if pos >= word.len() || word[pos] != *c {
                        return None;
                    }
                    pos += 1;
                }
                Ctx::VowelPlus => {
                    if pos >= word.len() || !is_orth_vowel(word[pos]) {
                        return None;
                    }
                    while pos < word.len() && is_orth_vowel(word[pos]) {
                        pos += 1;
                    }
                }
            }
        }
        Some(pat.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ipa::Phone;

    fn tiny() -> RuleSet {
        RuleSet::new(vec![
            // "ch" -> tʃ, must precede plain "c"
            Rule {
                left: &[],
                pattern: "ch",
                right: &[],
                output: &[Phone::Ch],
            },
            // word-final "e" silent
            Rule {
                left: &[],
                pattern: "e",
                right: &[Ctx::Boundary],
                output: &[],
            },
            Rule {
                left: &[],
                pattern: "c",
                right: &[],
                output: &[Phone::K],
            },
            Rule {
                left: &[],
                pattern: "a",
                right: &[],
                output: &[Phone::A],
            },
            Rule {
                left: &[],
                pattern: "e",
                right: &[],
                output: &[Phone::E],
            },
            Rule {
                left: &[],
                pattern: "t",
                right: &[],
                output: &[Phone::T],
            },
            Rule {
                left: &[],
                pattern: "s",
                right: &[Ctx::Vowel],
                output: &[Phone::S],
            },
            Rule {
                left: &[Ctx::Vowel],
                pattern: "s",
                right: &[],
                output: &[Phone::Z],
            },
        ])
    }

    #[test]
    fn ordered_first_match_wins() {
        let rs = tiny();
        assert_eq!(rs.convert("cha").to_ipa(), "tʃa");
        assert_eq!(rs.convert("ca").to_ipa(), "ka");
    }

    #[test]
    fn boundary_context() {
        let rs = tiny();
        // final e silent, medial e voiced
        assert_eq!(rs.convert("tate").to_ipa(), "tat");
        assert_eq!(rs.convert("teta").to_ipa(), "teta");
    }

    #[test]
    fn left_right_contexts() {
        let rs = tiny();
        // s before vowel -> s ; s after vowel (not before vowel) -> z
        assert_eq!(rs.convert("sa").to_ipa(), "sa");
        assert_eq!(rs.convert("as").to_ipa(), "az");
    }

    #[test]
    fn unknown_chars_are_skipped() {
        let rs = tiny();
        assert_eq!(rs.convert("q-a!").to_ipa(), "a");
    }

    #[test]
    fn multiword_input_gets_boundaries_per_word() {
        let rs = tiny();
        // each word-final e is silent
        assert_eq!(rs.convert("te te").to_ipa(), "tt");
    }

    #[test]
    fn empty_input_is_empty_output() {
        let rs = tiny();
        assert!(rs.convert("").is_empty());
        assert!(rs.convert("   ").is_empty());
    }
}
