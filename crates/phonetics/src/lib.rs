//! # Phonetics — grapheme-to-phoneme conversion and approximate matching
//!
//! This crate is the stand-in for the *Dhvani* text-to-phoneme engine that
//! the paper integrated into PostgreSQL (§4.2), plus the approximate string
//! distance machinery used by the LexEQUAL (ψ) operator.
//!
//! * [`ipa`] defines the canonical phonemic alphabet: a compact subset of the
//!   International Phonetic Alphabet where every phone is one byte, so that
//!   phoneme strings are plain byte strings — cheap to store in tuples,
//!   cheap to compare, and directly indexable.
//! * [`ruleset`] is an NRL-style context-sensitive rewrite-rule engine used
//!   by the Latin-script converters ([`english`], [`french`]).
//! * [`indic`] is a table-driven converter for abugida scripts
//!   (Devanagari/Hindi, Tamil, Kannada) with inherent-vowel, virama, and
//!   positional-voicing handling.
//! * [`translit`] transliterates romanized names into Indic scripts — used
//!   by the data generator to fabricate the multilingual names dataset.
//! * [`distance`] implements Levenshtein edit distance three ways: the full
//!   dynamic program, the banded diagonal-transition variant the paper uses
//!   (Navarro \[16\]), and a threshold-bounded early-exit predicate.
//! * [`converter`] ties everything to `LangId`s: a [`ConverterRegistry`]
//!   that the engine consults at insertion time to materialize phonemes.

pub mod converter;
pub mod distance;
pub mod english;
pub mod french;
pub mod german;
pub mod indic;
pub mod ipa;
pub mod ruleset;
pub mod soundex;
pub mod spanish;
pub mod translit;

pub use converter::{ConverterRegistry, PhonemeConverter};
pub use distance::{edit_distance, edit_distance_banded, within_distance, DistanceBuffer};
pub use ipa::{Phone, PhonemeString};
