//! # M-Tree — a height-balanced access method for metric spaces
//!
//! Implementation of the M-Tree of Ciaccia, Patella & Zezula (VLDB 1997),
//! the index structure the paper added to PostgreSQL through GiST to speed
//! up the fuzzy phonemic matching of the LexEQUAL operator (§4.2.1).
//!
//! The tree stores keys from an arbitrary metric space.  Internal entries
//! are *routing objects* with a covering radius; range search prunes a
//! subtree when the triangle inequality proves that no key inside the
//! covering ball can lie within the query radius.
//!
//! Two node-split policies are provided:
//!
//! * [`SplitPolicy::Random`] — the paper's choice: "we specifically chose
//!   the random-split alternative ... since it offers the best index
//!   modification time".
//! * [`SplitPolicy::MinMaxRadius`] — the computationally heavier mM_RAD
//!   policy from the original M-Tree paper, kept for the ablation bench.
//!
//! Search statistics ([`QueryStats`]) expose distance-computation and
//! node-visit counts, which is how the evaluation explains *why* the M-Tree
//! is only marginally effective on short discrete-metric strings (§5.3:
//! "poor pruning efficiency").

mod tree;

pub use tree::{MTree, Metric, PartitionedRange, QueryStats, RangeSubtree, SplitPolicy};

/// Default maximum number of entries per node.  Chosen so a node of phoneme
/// strings (~16 bytes each plus radii) is roughly one 8 KiB disk page — the
/// kernel's access-method adapter charges one page read per visited node.
pub const DEFAULT_NODE_CAPACITY: usize = 64;
