//! The M-Tree proper.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::atomic::{AtomicU64, Ordering};

/// A distance function making the key type a metric space.
///
/// Implementations must satisfy the metric axioms (identity, symmetry,
/// triangle inequality); range-search correctness depends on them.  The
/// crate's property tests verify pruning never drops results for
/// Levenshtein-style metrics.
pub trait Metric<K> {
    /// Distance between two keys.
    fn distance(&self, a: &K, b: &K) -> f64;
}

impl<K, F: Fn(&K, &K) -> f64> Metric<K> for F {
    fn distance(&self, a: &K, b: &K) -> f64 {
        self(a, b)
    }
}

/// Node-split policy (promotion of the two new routing objects).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SplitPolicy {
    /// Promote two distinct entries chosen uniformly at random — the
    /// paper's pick for its superior index-build time.
    #[default]
    Random,
    /// mM_RAD: consider a sample of promotion pairs and keep the pair
    /// minimizing the larger covering radius.  Better pruning, much more
    /// expensive to build (quadratic distance computations per split).
    MinMaxRadius,
}

/// Statistics gathered during one query or accumulated across queries.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QueryStats {
    /// Number of metric distance evaluations.
    pub dist_computations: u64,
    /// Number of tree nodes visited (≈ page reads in the engine adapter).
    pub nodes_visited: u64,
    /// Number of subtrees pruned by the triangle inequality.
    pub subtrees_pruned: u64,
}

impl QueryStats {
    /// Merge another stats record into this one.
    pub fn absorb(&mut self, other: QueryStats) {
        self.dist_computations += other.dist_computations;
        self.nodes_visited += other.nodes_visited;
        self.subtrees_pruned += other.subtrees_pruned;
    }
}

/// Entry in a leaf node: a key plus its distance to the parent routing key.
#[derive(Debug, Clone)]
struct LeafEntry<K, V> {
    key: K,
    value: V,
    dist_to_parent: f64,
}

/// Entry in an internal node: a routing key, its covering radius, distance
/// to its own parent, and the child node.
#[derive(Debug)]
struct RoutingEntry<K, V> {
    key: K,
    radius: f64,
    dist_to_parent: f64,
    child: Box<Node<K, V>>,
}

#[derive(Debug)]
enum Node<K, V> {
    Leaf(Vec<LeafEntry<K, V>>),
    Internal(Vec<RoutingEntry<K, V>>),
}

/// One unexplored partition of a range query, produced by
/// [`MTree::range_partitioned`]: a root-level child that survived pruning,
/// together with the already-computed distance from the query to its
/// routing key.  Opaque (node layout stays private) and `Send`, so callers
/// can resolve partitions on worker threads via [`MTree::range_subtree`]
/// while the tree sits behind a shared reference.
pub struct RangeSubtree<'t, K, V> {
    node: &'t Node<K, V>,
    dist_to_query: f64,
}

/// Result of [`MTree::range_partitioned`]: matches already resolved at the
/// root (non-empty only for a leaf root), the surviving subtree
/// partitions, and the stats accrued so far.
pub type PartitionedRange<'t, K, V> = (Vec<(K, V, f64)>, Vec<RangeSubtree<'t, K, V>>, QueryStats);

/// The M-Tree.  `K` is the key type, `V` an opaque payload (the engine
/// stores heap tuple ids).
pub struct MTree<K, V, M: Metric<K>> {
    metric: M,
    root: Box<Node<K, V>>,
    node_capacity: usize,
    policy: SplitPolicy,
    len: usize,
    rng: StdRng,
    /// Distance computations spent on inserts (build cost; ablation
    /// bench).  Atomic (not `Cell`) so a built tree is `Sync` and
    /// concurrent searches can share it behind a read lock.
    build_distances: AtomicU64,
}

impl<K: Clone, V: Clone, M: Metric<K>> MTree<K, V, M> {
    /// Create an empty tree with the default capacity and random split.
    pub fn new(metric: M) -> Self {
        Self::with_options(
            metric,
            crate::DEFAULT_NODE_CAPACITY,
            SplitPolicy::Random,
            0x5eed,
        )
    }

    /// Create an empty tree with explicit node capacity, split policy and
    /// RNG seed (seeded so index builds are reproducible).
    pub fn with_options(metric: M, node_capacity: usize, policy: SplitPolicy, seed: u64) -> Self {
        assert!(node_capacity >= 4, "node capacity must be at least 4");
        MTree {
            metric,
            root: Box::new(Node::Leaf(Vec::new())),
            node_capacity,
            policy,
            len: 0,
            rng: StdRng::seed_from_u64(seed),
            build_distances: AtomicU64::new(0),
        }
    }

    /// Number of stored keys.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the tree holds no keys.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Total distance computations spent building the tree so far.
    pub fn build_distance_computations(&self) -> u64 {
        self.build_distances.load(Ordering::Relaxed)
    }

    /// Height of the tree (leaf = 1).
    pub fn height(&self) -> usize {
        let mut h = 1;
        let mut node: &Node<K, V> = &self.root;
        while let Node::Internal(entries) = node {
            h += 1;
            node = &entries[0].child;
        }
        h
    }

    /// Number of nodes (≈ pages) in the tree.
    pub fn node_count(&self) -> usize {
        fn count<K, V>(n: &Node<K, V>) -> usize {
            match n {
                Node::Leaf(_) => 1,
                Node::Internal(es) => 1 + es.iter().map(|e| count(&e.child)).sum::<usize>(),
            }
        }
        count(&self.root)
    }

    #[inline]
    fn dist(&self, a: &K, b: &K) -> f64 {
        self.build_distances.fetch_add(1, Ordering::Relaxed);
        self.metric.distance(a, b)
    }

    /// Insert a key/value pair.
    pub fn insert(&mut self, key: K, value: V) {
        // `dist_to_parent` of entries in the root is meaningless; use NAN-free 0.
        if let Some((k1, k2)) = self.insert_into(key, value, None) {
            // Root split: grow the tree by one level.
            let old_root = std::mem::replace(&mut self.root, Box::new(Node::Leaf(Vec::new())));
            let (left, right) = match *old_root {
                Node::Leaf(entries) => self.split_leaf(entries, &k1, &k2),
                Node::Internal(entries) => self.split_internal(entries, &k1, &k2),
            };
            *self.root = Node::Internal(vec![left, right]);
        }
        self.len += 1;
    }

    /// Recursive insert helper.  Returns `Some((k1, k2))` when the *current
    /// root* must be split with promoted keys `k1`, `k2` — splits below the
    /// root are handled inline.  (The actual split of the root happens in
    /// `insert`, because it needs to own the node.)
    fn insert_into(&mut self, key: K, value: V, _parent: Option<&K>) -> Option<(K, K)> {
        // Iterative descent, collecting the path, then split upward.
        // For simplicity and safety (no aliasing games), we implement the
        // descent recursively over raw subtree pointers via a helper.
        let capacity = self.node_capacity;
        let mut promoted = descend(self, &mut RootRef, key, value);
        if let Some(p) = promoted.take() {
            return Some(p);
        }
        let _ = capacity;
        None
    }

    fn split_leaf(
        &mut self,
        entries: Vec<LeafEntry<K, V>>,
        k1: &K,
        k2: &K,
    ) -> (RoutingEntry<K, V>, RoutingEntry<K, V>) {
        let mut left: Vec<LeafEntry<K, V>> = Vec::new();
        let mut right: Vec<LeafEntry<K, V>> = Vec::new();
        // Ties alternate sides so duplicate-heavy data (or equal promoted
        // keys) still yields two non-empty partitions.
        let mut tie_left = true;
        for e in entries {
            let d1 = self.dist(&e.key, k1);
            let d2 = self.dist(&e.key, k2);
            let go_left = if d1 == d2 {
                tie_left = !tie_left;
                !tie_left
            } else {
                d1 < d2
            };
            if go_left {
                left.push(LeafEntry {
                    dist_to_parent: d1,
                    ..e
                });
            } else {
                right.push(LeafEntry {
                    dist_to_parent: d2,
                    ..e
                });
            }
        }
        // Never produce an empty node: a node with zero entries breaks the
        // insertion descent invariant (internal nodes choose among entries).
        if left.is_empty() {
            let mut e = right.pop().expect("split of >=2 entries");
            e.dist_to_parent = self.dist(&e.key, k1);
            left.push(e);
        } else if right.is_empty() {
            let mut e = left.pop().expect("split of >=2 entries");
            e.dist_to_parent = self.dist(&e.key, k2);
            right.push(e);
        }
        let r1 = left.iter().map(|e| e.dist_to_parent).fold(0.0f64, f64::max);
        let r2 = right
            .iter()
            .map(|e| e.dist_to_parent)
            .fold(0.0f64, f64::max);
        (
            RoutingEntry {
                key: k1.clone(),
                radius: r1,
                dist_to_parent: 0.0,
                child: Box::new(Node::Leaf(left)),
            },
            RoutingEntry {
                key: k2.clone(),
                radius: r2,
                dist_to_parent: 0.0,
                child: Box::new(Node::Leaf(right)),
            },
        )
    }

    fn split_internal(
        &mut self,
        entries: Vec<RoutingEntry<K, V>>,
        k1: &K,
        k2: &K,
    ) -> (RoutingEntry<K, V>, RoutingEntry<K, V>) {
        let mut left: Vec<RoutingEntry<K, V>> = Vec::new();
        let mut right: Vec<RoutingEntry<K, V>> = Vec::new();
        let mut tie_left = true;
        for e in entries {
            let d1 = self.dist(&e.key, k1);
            let d2 = self.dist(&e.key, k2);
            let go_left = if d1 == d2 {
                tie_left = !tie_left;
                !tie_left
            } else {
                d1 < d2
            };
            if go_left {
                left.push(RoutingEntry {
                    dist_to_parent: d1,
                    ..e
                });
            } else {
                right.push(RoutingEntry {
                    dist_to_parent: d2,
                    ..e
                });
            }
        }
        if left.is_empty() {
            let mut e = right.pop().expect("split of >=2 entries");
            e.dist_to_parent = self.dist(&e.key, k1);
            left.push(e);
        } else if right.is_empty() {
            let mut e = left.pop().expect("split of >=2 entries");
            e.dist_to_parent = self.dist(&e.key, k2);
            right.push(e);
        }
        let r1 = left
            .iter()
            .map(|e| e.dist_to_parent + e.radius)
            .fold(0.0f64, f64::max);
        let r2 = right
            .iter()
            .map(|e| e.dist_to_parent + e.radius)
            .fold(0.0f64, f64::max);
        (
            RoutingEntry {
                key: k1.clone(),
                radius: r1,
                dist_to_parent: 0.0,
                child: Box::new(Node::Internal(left)),
            },
            RoutingEntry {
                key: k2.clone(),
                radius: r2,
                dist_to_parent: 0.0,
                child: Box::new(Node::Internal(right)),
            },
        )
    }

    /// Range query: every (key, value) within `radius` of `query`.
    /// Returns matches with their exact distances, plus the query stats.
    pub fn range(&self, query: &K, radius: f64) -> (Vec<(K, V, f64)>, QueryStats) {
        let mut stats = QueryStats::default();
        let mut out = Vec::new();
        self.range_node(&self.root, query, radius, None, &mut out, &mut stats);
        (out, stats)
    }

    /// Split a range query at the root for parallel execution: prune the
    /// root's routing entries as [`MTree::range`] would, but instead of
    /// descending, hand back one [`RangeSubtree`] per surviving child.
    /// Each subtree is independent — callers fan them out across threads
    /// via [`MTree::range_subtree`] and merge.  The union of the returned
    /// matches (non-empty only for a leaf root) and every subtree's
    /// matches equals `range(query, radius)` exactly, as does the sum of
    /// the stats.
    pub fn range_partitioned(&self, query: &K, radius: f64) -> PartitionedRange<'_, K, V> {
        let mut stats = QueryStats::default();
        let mut out = Vec::new();
        let mut subtrees = Vec::new();
        match &*self.root {
            Node::Leaf(_) => {
                self.range_node(&self.root, query, radius, None, &mut out, &mut stats);
            }
            Node::Internal(entries) => {
                stats.nodes_visited += 1;
                for e in entries {
                    stats.dist_computations += 1;
                    let d = self.metric.distance(query, &e.key);
                    if d > radius + e.radius {
                        stats.subtrees_pruned += 1;
                        continue;
                    }
                    subtrees.push(RangeSubtree {
                        node: &e.child,
                        dist_to_query: d,
                    });
                }
            }
        }
        (out, subtrees, stats)
    }

    /// Execute one partition produced by [`MTree::range_partitioned`].
    /// `&self` only — safe to call from many threads behind a read guard.
    pub fn range_subtree(
        &self,
        query: &K,
        radius: f64,
        subtree: &RangeSubtree<'_, K, V>,
    ) -> (Vec<(K, V, f64)>, QueryStats) {
        let mut stats = QueryStats::default();
        let mut out = Vec::new();
        self.range_node(
            subtree.node,
            query,
            radius,
            Some(subtree.dist_to_query),
            &mut out,
            &mut stats,
        );
        (out, stats)
    }

    #[allow(clippy::too_many_arguments)]
    fn range_node(
        &self,
        node: &Node<K, V>,
        query: &K,
        radius: f64,
        dist_query_parent: Option<f64>,
        out: &mut Vec<(K, V, f64)>,
        stats: &mut QueryStats,
    ) {
        stats.nodes_visited += 1;
        match node {
            Node::Leaf(entries) => {
                for e in entries {
                    // Pre-filter: |d(q,parent) - d(key,parent)| > r ⇒ skip
                    // without computing d(q,key).
                    if let Some(dqp) = dist_query_parent {
                        if (dqp - e.dist_to_parent).abs() > radius {
                            stats.subtrees_pruned += 1;
                            continue;
                        }
                    }
                    stats.dist_computations += 1;
                    let d = self.metric.distance(query, &e.key);
                    if d <= radius {
                        out.push((e.key.clone(), e.value.clone(), d));
                    }
                }
            }
            Node::Internal(entries) => {
                for e in entries {
                    if let Some(dqp) = dist_query_parent {
                        if (dqp - e.dist_to_parent).abs() > radius + e.radius {
                            stats.subtrees_pruned += 1;
                            continue;
                        }
                    }
                    stats.dist_computations += 1;
                    let d = self.metric.distance(query, &e.key);
                    if d > radius + e.radius {
                        stats.subtrees_pruned += 1;
                        continue;
                    }
                    self.range_node(&e.child, query, radius, Some(d), out, stats);
                }
            }
        }
    }

    /// k-nearest-neighbour search (best-first branch and bound).
    ///
    /// Returns up to `k` entries ordered by ascending distance, with query
    /// statistics.  Ties at the cut-off distance are broken arbitrarily.
    /// This is the classic M-Tree kNN of Ciaccia et al. — a min-heap over
    /// subtrees ordered by `d_min = max(0, d(q, routing) − radius)`, pruned
    /// against the current k-th best distance.
    pub fn nearest(&self, query: &K, k: usize) -> (Vec<(K, V, f64)>, QueryStats) {
        use std::cmp::Reverse;
        use std::collections::BinaryHeap;

        let mut stats = QueryStats::default();
        if k == 0 || self.len == 0 {
            stats.nodes_visited = 0;
            return (Vec::new(), stats);
        }

        /// f64 ordered wrapper (distances are finite by metric contract).
        #[derive(PartialEq)]
        struct Ord64(f64);
        impl Eq for Ord64 {}
        impl PartialOrd for Ord64 {
            fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
                Some(self.cmp(other))
            }
        }
        impl Ord for Ord64 {
            fn cmp(&self, other: &Self) -> std::cmp::Ordering {
                self.0
                    .partial_cmp(&other.0)
                    .unwrap_or(std::cmp::Ordering::Equal)
            }
        }

        // Candidate subtrees: min-heap by d_min.
        let mut pending: BinaryHeap<(Reverse<Ord64>, usize)> = BinaryHeap::new();
        let mut nodes: Vec<&Node<K, V>> = vec![&self.root];
        pending.push((Reverse(Ord64(0.0)), 0));
        // Results: max-heap by distance so the worst of the best k pops.
        let mut best: BinaryHeap<(Ord64, usize)> = BinaryHeap::new();
        let mut found: Vec<(K, V, f64)> = Vec::new();

        let kth = |best: &BinaryHeap<(Ord64, usize)>| -> f64 {
            if best.len() < k {
                f64::INFINITY
            } else {
                best.peek().map(|(d, _)| d.0).unwrap_or(f64::INFINITY)
            }
        };

        while let Some((Reverse(Ord64(d_min)), ni)) = pending.pop() {
            if d_min > kth(&best) {
                break; // every remaining subtree is farther than the k-th best
            }
            stats.nodes_visited += 1;
            match nodes[ni] {
                Node::Leaf(entries) => {
                    for e in entries {
                        stats.dist_computations += 1;
                        let d = self.metric.distance(query, &e.key);
                        if d < kth(&best) || best.len() < k {
                            found.push((e.key.clone(), e.value.clone(), d));
                            best.push((Ord64(d), found.len() - 1));
                            if best.len() > k {
                                best.pop();
                            }
                        }
                    }
                }
                Node::Internal(entries) => {
                    for e in entries {
                        stats.dist_computations += 1;
                        let d = self.metric.distance(query, &e.key);
                        let child_min = (d - e.radius).max(0.0);
                        if child_min <= kth(&best) {
                            nodes.push(&e.child);
                            pending.push((Reverse(Ord64(child_min)), nodes.len() - 1));
                        } else {
                            stats.subtrees_pruned += 1;
                        }
                    }
                }
            }
        }

        // Materialize the best k in ascending order.
        let mut picked: Vec<usize> = best.into_sorted_vec().into_iter().map(|(_, i)| i).collect();
        picked.dedup();
        let mut out: Vec<(K, V, f64)> = picked.into_iter().map(|i| found[i].clone()).collect();
        out.sort_by(|a, b| a.2.partial_cmp(&b.2).unwrap_or(std::cmp::Ordering::Equal));
        out.truncate(k);
        (out, stats)
    }

    /// Exhaustively iterate all keys (test / verification helper).
    pub fn iter_all(&self) -> Vec<(K, V)> {
        fn walk<K: Clone, V: Clone>(n: &Node<K, V>, out: &mut Vec<(K, V)>) {
            match n {
                Node::Leaf(es) => out.extend(es.iter().map(|e| (e.key.clone(), e.value.clone()))),
                Node::Internal(es) => {
                    for e in es {
                        walk(&e.child, out);
                    }
                }
            }
        }
        let mut out = Vec::with_capacity(self.len);
        walk(&self.root, &mut out);
        out
    }
}

/// Marker for the root reference in `descend` (placeholder — see below).
struct RootRef;

/// Recursive insertion.  Returns promoted keys when the **root** overflows.
///
/// Implemented as a free function to keep borrow scopes simple: we take the
/// tree (for metric/rng/policy access) and walk `tree.root` by raw recursion
/// on owned boxes via `take`/`replace`.
fn descend<K: Clone, V: Clone, M: Metric<K>>(
    tree: &mut MTree<K, V, M>,
    _root: &mut RootRef,
    key: K,
    value: V,
) -> Option<(K, K)> {
    // Detach the root so we can walk it mutably alongside &tree.metric.
    let mut root = std::mem::replace(&mut tree.root, Box::new(Node::Leaf(Vec::new())));
    let overflow = insert_rec(tree, &mut root, key, value, None);
    tree.root = root;
    match overflow {
        Overflow::None => None,
        Overflow::SplitRoot(k1, k2) => Some((k1, k2)),
    }
}

enum Overflow<K> {
    None,
    /// The node passed in has overflowed; the caller must split it using the
    /// two promoted keys.
    SplitRoot(K, K),
}

fn insert_rec<K: Clone, V: Clone, M: Metric<K>>(
    tree: &mut MTree<K, V, M>,
    node: &mut Node<K, V>,
    key: K,
    value: V,
    _parent: Option<&K>,
) -> Overflow<K> {
    match node {
        Node::Leaf(entries) => {
            // dist_to_parent enables the search-time pre-filter; for root
            // leaves there is no parent and the value is never read.
            let dtp = _parent.map(|p| tree.dist(&key, p)).unwrap_or(0.0);
            entries.push(LeafEntry {
                key,
                value,
                dist_to_parent: dtp,
            });
            if entries.len() > tree.node_capacity {
                let (k1, k2) = promote(tree, entries.iter().map(|e| &e.key));
                Overflow::SplitRoot(k1, k2)
            } else {
                Overflow::None
            }
        }
        Node::Internal(entries) => {
            // Choose the subtree: minimal radius enlargement, ties broken by
            // closest routing key (the classic M-Tree heuristic).
            let mut best = 0usize;
            let mut best_enlarge = f64::INFINITY;
            let mut best_dist = f64::INFINITY;
            let mut dists = Vec::with_capacity(entries.len());
            for (i, e) in entries.iter().enumerate() {
                let d = tree.dist(&key, &e.key);
                dists.push(d);
                let enlarge = (d - e.radius).max(0.0);
                if enlarge < best_enlarge || (enlarge == best_enlarge && d < best_dist) {
                    best = i;
                    best_enlarge = enlarge;
                    best_dist = d;
                }
            }
            // Update the covering radius and descend.
            let e = &mut entries[best];
            e.radius = e.radius.max(dists[best]);
            let parent_key = e.key.clone();
            match insert_rec(tree, &mut e.child, key, value, Some(&parent_key)) {
                Overflow::None => Overflow::None,
                Overflow::SplitRoot(k1, k2) => {
                    // Split the overflowed child in place.
                    let child = std::mem::replace(&mut *e.child, Node::Leaf(Vec::new()));
                    let (mut left, mut right) = match child {
                        Node::Leaf(es) => tree.split_leaf(es, &k1, &k2),
                        Node::Internal(es) => tree.split_internal(es, &k1, &k2),
                    };
                    // The two new entries live in THIS node, so their
                    // dist_to_parent must be the distance to this node's own
                    // routing key (held by our parent).  A wrong value here
                    // would make the search-time pre-filter prune real
                    // matches, so compute it exactly; for the root (no
                    // parent) the value is never read.
                    left.dist_to_parent = _parent.map(|p| tree.dist(&left.key, p)).unwrap_or(0.0);
                    right.dist_to_parent = _parent.map(|p| tree.dist(&right.key, p)).unwrap_or(0.0);
                    entries.remove(best);
                    entries.push(left);
                    entries.push(right);
                    if entries.len() > tree.node_capacity {
                        let (k1, k2) = promote(tree, entries.iter().map(|e| &e.key));
                        Overflow::SplitRoot(k1, k2)
                    } else {
                        Overflow::None
                    }
                }
            }
        }
    }
}

/// Choose two promotion keys according to the split policy.
fn promote<'a, K: Clone + 'a, V, M: Metric<K>>(
    tree: &mut MTree<K, V, M>,
    keys: impl Iterator<Item = &'a K>,
) -> (K, K) {
    let keys: Vec<&K> = keys.collect();
    debug_assert!(keys.len() >= 2);
    match tree.policy {
        SplitPolicy::Random => {
            let i = tree.rng.gen_range(0..keys.len());
            let mut j = tree.rng.gen_range(0..keys.len() - 1);
            if j >= i {
                j += 1;
            }
            (keys[i].clone(), keys[j].clone())
        }
        SplitPolicy::MinMaxRadius => {
            // Sample up to 32 candidate pairs; pick the pair minimizing the
            // larger of the two resulting covering radii.
            let mut best: Option<(usize, usize, f64)> = None;
            let samples = 32.min(keys.len() * (keys.len() - 1) / 2);
            for _ in 0..samples {
                let i = tree.rng.gen_range(0..keys.len());
                let mut j = tree.rng.gen_range(0..keys.len() - 1);
                if j >= i {
                    j += 1;
                }
                let (mut r1, mut r2) = (0.0f64, 0.0f64);
                for k in &keys {
                    let d1 = tree.metric.distance(k, keys[i]);
                    let d2 = tree.metric.distance(k, keys[j]);
                    tree.build_distances.fetch_add(2, Ordering::Relaxed);
                    if d1 <= d2 {
                        r1 = r1.max(d1);
                    } else {
                        r2 = r2.max(d2);
                    }
                }
                let rmax = r1.max(r2);
                if best.map(|(_, _, b)| rmax < b).unwrap_or(true) {
                    best = Some((i, j, rmax));
                }
            }
            let (i, j, _) = best.expect("at least one sample");
            (keys[i].clone(), keys[j].clone())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn abs_metric(a: &i64, b: &i64) -> f64 {
        (a - b).abs() as f64
    }

    fn build(values: &[i64], policy: SplitPolicy) -> MTree<i64, usize, fn(&i64, &i64) -> f64> {
        let mut t: MTree<i64, usize, fn(&i64, &i64) -> f64> =
            MTree::with_options(abs_metric, 8, policy, 42);
        for (i, &v) in values.iter().enumerate() {
            t.insert(v, i);
        }
        t
    }

    #[test]
    fn empty_tree() {
        let t: MTree<i64, usize, fn(&i64, &i64) -> f64> = MTree::new(abs_metric);
        assert!(t.is_empty());
        let (hits, stats) = t.range(&5, 100.0);
        assert!(hits.is_empty());
        assert_eq!(stats.nodes_visited, 1);
    }

    #[test]
    fn range_matches_linear_scan() {
        let values: Vec<i64> = (0..500).map(|i| (i * 37) % 1000).collect();
        let t = build(&values, SplitPolicy::Random);
        assert_eq!(t.len(), 500);
        for q in [0i64, 123, 999, 500] {
            for r in [0.0, 3.0, 10.0, 50.0] {
                let (mut hits, _) = t.range(&q, r);
                hits.sort_by_key(|&(k, v, _)| (k, v));
                let mut expect: Vec<(i64, usize)> = values
                    .iter()
                    .enumerate()
                    .filter(|&(_, &v)| abs_metric(&v, &q) <= r)
                    .map(|(i, &v)| (v, i))
                    .collect();
                expect.sort();
                let got: Vec<(i64, usize)> = hits.iter().map(|&(k, v, _)| (k, v)).collect();
                assert_eq!(got, expect, "q={q} r={r}");
            }
        }
    }

    #[test]
    fn partitioned_range_equals_serial_range() {
        // Leaf-only root and multi-level trees, several probes and radii:
        // root matches ∪ subtree matches must equal range(), stats included.
        for n in [3usize, 500] {
            let values: Vec<i64> = (0..n as i64).map(|i| (i * 37) % 1000).collect();
            let t = build(&values, SplitPolicy::Random);
            for q in [0i64, 123, 999] {
                for r in [0.0, 10.0, 50.0] {
                    let (serial_hits, serial_stats) = t.range(&q, r);
                    let (mut hits, subtrees, mut stats) = t.range_partitioned(&q, r);
                    for sub in &subtrees {
                        let (h, s) = t.range_subtree(&q, r, sub);
                        hits.extend(h);
                        stats.absorb(s);
                    }
                    let key = |x: &(i64, usize, f64)| (x.0, x.1);
                    let mut a: Vec<_> = serial_hits.iter().map(key).collect();
                    let mut b: Vec<_> = hits.iter().map(key).collect();
                    a.sort();
                    b.sort();
                    assert_eq!(a, b, "n={n} q={q} r={r}");
                    assert_eq!(stats, serial_stats, "n={n} q={q} r={r}");
                }
            }
        }
    }

    #[test]
    fn distances_reported_are_exact() {
        let t = build(&[1, 5, 9, 13, 2, 8], SplitPolicy::Random);
        let (hits, _) = t.range(&5, 4.0);
        for (k, _, d) in hits {
            assert_eq!(d, abs_metric(&k, &5));
        }
    }

    #[test]
    fn tree_grows_in_height_and_stays_balanced() {
        let values: Vec<i64> = (0..2000).collect();
        let t = build(&values, SplitPolicy::Random);
        assert!(t.height() >= 2, "2000 values with capacity 8 must split");
        // All leaves at the same depth (height-balance).
        fn depths<K, V>(n: &Node<K, V>, d: usize, out: &mut Vec<usize>) {
            match n {
                Node::Leaf(_) => out.push(d),
                Node::Internal(es) => {
                    for e in es {
                        depths(&e.child, d + 1, out);
                    }
                }
            }
        }
        let mut ds = Vec::new();
        depths(&t.root, 1, &mut ds);
        let first = ds[0];
        assert!(ds.iter().all(|&d| d == first), "leaf depths differ: {ds:?}");
    }

    #[test]
    fn pruning_happens_for_selective_queries() {
        let values: Vec<i64> = (0..5000).map(|i| i * 10).collect();
        let t = build(&values, SplitPolicy::Random);
        let (_, stats) = t.range(&25000, 5.0);
        assert!(
            stats.dist_computations < 5000,
            "selective range query should not compare against every key: {stats:?}"
        );
        assert!(stats.subtrees_pruned > 0);
    }

    #[test]
    fn minmax_policy_also_correct() {
        let values: Vec<i64> = (0..300).map(|i| (i * 7919) % 5000).collect();
        let t = build(&values, SplitPolicy::MinMaxRadius);
        let (hits, _) = t.range(&2500, 30.0);
        let expect = values.iter().filter(|&&v| (v - 2500).abs() <= 30).count();
        assert_eq!(hits.len(), expect);
    }

    #[test]
    fn knn_returns_the_k_closest() {
        let values: Vec<i64> = (0..1000).map(|i| i * 3).collect();
        let t = build(&values, SplitPolicy::Random);
        let (hits, stats) = t.nearest(&500, 5);
        assert_eq!(hits.len(), 5);
        // Closest multiples of 3 to 500: 501(d=1), 498(d=2), 504(d=4), 495(d=5), 507(d=7)
        assert_eq!(hits[0].0, 501);
        assert!(
            hits.windows(2).all(|w| w[0].2 <= w[1].2),
            "ascending distances"
        );
        let max_d = hits.last().unwrap().2;
        // Exhaustive check: nothing closer was missed.
        let better = values
            .iter()
            .filter(|&&v| abs_metric(&v, &500) < max_d)
            .count();
        assert!(better <= 5);
        assert!(
            stats.dist_computations < 1100,
            "branch-and-bound should prune: {stats:?}"
        );
    }

    #[test]
    fn knn_edge_cases() {
        let t = build(&[10, 20, 30], SplitPolicy::Random);
        let (zero, _) = t.nearest(&15, 0);
        assert!(zero.is_empty());
        let (all, _) = t.nearest(&15, 99);
        assert_eq!(all.len(), 3);
        let empty: MTree<i64, usize, fn(&i64, &i64) -> f64> = MTree::new(abs_metric);
        let (none, _) = empty.nearest(&15, 3);
        assert!(none.is_empty());
    }

    #[test]
    fn iter_all_returns_everything() {
        let values: Vec<i64> = (0..100).collect();
        let t = build(&values, SplitPolicy::Random);
        let mut all: Vec<i64> = t.iter_all().into_iter().map(|(k, _)| k).collect();
        all.sort();
        assert_eq!(all, values);
    }

    #[test]
    fn duplicate_keys_are_kept() {
        let t = build(&[7, 7, 7, 7], SplitPolicy::Random);
        let (hits, _) = t.range(&7, 0.0);
        assert_eq!(hits.len(), 4);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    type ByteMetric = fn(&Vec<u8>, &Vec<u8>) -> f64;

    #[allow(clippy::ptr_arg)]
    fn lev(a: &Vec<u8>, b: &Vec<u8>) -> f64 {
        // Minimal reference Levenshtein for the property test (the real
        // implementation lives in mlql-phonetics; duplicating here keeps the
        // crate dependency-free).
        let n = b.len();
        let mut prev: Vec<usize> = (0..=n).collect();
        let mut curr = vec![0usize; n + 1];
        for (i, &ca) in a.iter().enumerate() {
            curr[0] = i + 1;
            for (j, &cb) in b.iter().enumerate() {
                let cost = usize::from(ca != cb);
                curr[j + 1] = (prev[j] + cost).min(prev[j + 1] + 1).min(curr[j] + 1);
            }
            std::mem::swap(&mut prev, &mut curr);
        }
        prev[n] as f64
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]
        #[test]
        fn knn_matches_linear_scan(
            keys in proptest::collection::vec(proptest::collection::vec(0u8..4, 0..8), 1..100),
            query in proptest::collection::vec(0u8..4, 0..8),
            k in 1usize..8,
        ) {
            let mut t: MTree<Vec<u8>, usize, ByteMetric> =
                MTree::with_options(lev, 6, SplitPolicy::Random, 3);
            for (i, key) in keys.iter().enumerate() {
                t.insert(key.clone(), i);
            }
            let (hits, _) = t.nearest(&query, k);
            prop_assert_eq!(hits.len(), k.min(keys.len()));
            // Distances ascend and every reported distance is exact.
            for w in hits.windows(2) {
                prop_assert!(w[0].2 <= w[1].2);
            }
            for (key, _, d) in &hits {
                prop_assert_eq!(*d, lev(key, &query));
            }
            // The k-th best distance must match the linear scan's k-th best.
            let mut all: Vec<f64> = keys.iter().map(|key| lev(key, &query)).collect();
            all.sort_by(|a, b| a.partial_cmp(b).unwrap());
            let expect_kth = all[hits.len() - 1];
            prop_assert_eq!(hits.last().unwrap().2, expect_kth);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn range_query_is_exhaustive_for_string_metric(
            keys in proptest::collection::vec(proptest::collection::vec(0u8..4, 0..8), 1..120),
            query in proptest::collection::vec(0u8..4, 0..8),
            radius in 0u8..4,
        ) {
            let mut t: MTree<Vec<u8>, usize, ByteMetric> =
                MTree::with_options(lev, 6, SplitPolicy::Random, 7);
            for (i, k) in keys.iter().enumerate() {
                t.insert(k.clone(), i);
            }
            let r = radius as f64;
            let (hits, _) = t.range(&query, r);
            let mut got: Vec<usize> = hits.iter().map(|&(_, v, _)| v).collect();
            got.sort_unstable();
            let mut expect: Vec<usize> = keys.iter().enumerate()
                .filter(|(_, k)| lev(k, &query) <= r)
                .map(|(i, _)| i)
                .collect();
            expect.sort_unstable();
            prop_assert_eq!(got, expect);
        }
    }
}
