//! Machine-readable benchmark output.
//!
//! Every harness binary emits a `BENCH_<name>.json` file alongside its
//! human-readable text report, so CI (and later perf PRs) can diff runs
//! mechanically instead of scraping stdout.  The JSON is hand-rolled —
//! the harness must stay dependency-free — and every report embeds a
//! snapshot of the engine metrics registry (`mlql_kernel::obs`) taken at
//! write time, tying wall-clock numbers to the engine-internal counters
//! (edit-distance calls, node visits, buffer-pool I/O) that explain them.
//!
//! Output directory: `$MLQL_BENCH_DIR`, defaulting to `benchmarks/`
//! relative to the working directory.

use std::fmt::Write as _;
use std::path::{Path, PathBuf};

/// A JSON value the report writer can render.
#[derive(Debug, Clone)]
pub enum Value {
    /// A finite float (non-finite renders as `null`).
    Num(f64),
    /// An integer, rendered without a decimal point.
    Int(i64),
    /// A string (escaped on render).
    Str(String),
    /// A boolean.
    Bool(bool),
    /// An array.
    Arr(Vec<Value>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, Value)>),
    /// Pre-rendered JSON spliced in verbatim (e.g. the engine metrics
    /// snapshot, which `mlql_kernel::obs` already renders).
    Raw(String),
}

/// Build an object value from `(key, value)` pairs.
pub fn obj(pairs: Vec<(&str, Value)>) -> Value {
    Value::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
}

fn escape_into(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl Value {
    fn render_into(&self, out: &mut String) {
        match self {
            Value::Num(v) if v.is_finite() => {
                let _ = write!(out, "{v}");
            }
            Value::Num(_) => out.push_str("null"),
            Value::Int(v) => {
                let _ = write!(out, "{v}");
            }
            Value::Str(s) => escape_into(out, s),
            Value::Bool(b) => {
                let _ = write!(out, "{b}");
            }
            Value::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.render_into(out);
                }
                out.push(']');
            }
            Value::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    escape_into(out, k);
                    out.push(':');
                    v.render_into(out);
                }
                out.push('}');
            }
            Value::Raw(json) => out.push_str(json),
        }
    }
}

/// One benchmark report, written as `BENCH_<name>.json`.
pub struct Report {
    name: String,
    fields: Vec<(String, Value)>,
}

impl Report {
    /// Start a report; `name` becomes the file stem (`BENCH_<name>.json`).
    pub fn new(name: &str) -> Report {
        let mut r = Report {
            name: name.to_string(),
            fields: Vec::new(),
        };
        r.set("bench", Value::Str(name.to_string()));
        r.set("scale", Value::Int(crate::scale() as i64));
        // Core count of the machine that produced the numbers: parallel
        // results are meaningless to compare across different widths, and
        // `bench_check.sh` warns when a baseline was recorded elsewhere.
        let cores = std::thread::available_parallelism()
            .map(|n| n.get() as i64)
            .unwrap_or(0);
        r.set("cpu_parallelism", Value::Int(cores));
        r
    }

    /// Set a field (replaces an earlier value under the same key).
    pub fn set(&mut self, key: &str, value: Value) -> &mut Report {
        if let Some(slot) = self.fields.iter_mut().find(|(k, _)| k == key) {
            slot.1 = value;
        } else {
            self.fields.push((key.to_string(), value));
        }
        self
    }

    /// Set a float field.
    pub fn num(&mut self, key: &str, v: f64) -> &mut Report {
        self.set(key, Value::Num(v))
    }

    /// Set an integer field.
    pub fn int(&mut self, key: &str, v: i64) -> &mut Report {
        self.set(key, Value::Int(v))
    }

    /// Set a boolean field.
    pub fn flag(&mut self, key: &str, v: bool) -> &mut Report {
        self.set(key, Value::Bool(v))
    }

    /// Render the report (with a fresh engine-metrics snapshot) as JSON.
    pub fn render(&self) -> String {
        let _ = mlql_kernel::obs::metrics();
        let mut out = String::new();
        out.push('{');
        for (i, (k, v)) in self.fields.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            escape_into(&mut out, k);
            out.push(':');
            v.render_into(&mut out);
        }
        if !self.fields.is_empty() {
            out.push(',');
        }
        out.push_str("\"engine_metrics\":");
        out.push_str(&mlql_kernel::obs::global().render_json());
        out.push('}');
        out.push('\n');
        out
    }

    /// Write `BENCH_<name>.json` into `dir` (created if missing).
    pub fn write_to(&self, dir: &Path) -> std::io::Result<PathBuf> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(format!("BENCH_{}.json", self.name));
        std::fs::write(&path, self.render())?;
        Ok(path)
    }

    /// Write into `$MLQL_BENCH_DIR` (default `benchmarks/`).
    pub fn write(&self) -> std::io::Result<PathBuf> {
        let dir = std::env::var("MLQL_BENCH_DIR").unwrap_or_else(|_| "benchmarks".into());
        self.write_to(Path::new(&dir))
    }

    /// Write, reporting the path (or the failure) on the text channel the
    /// harnesses already use.  Never aborts the run: the text report is
    /// still the primary artifact when the filesystem is read-only.
    pub fn write_and_note(&self) {
        match self.write() {
            Ok(path) => println!("# wrote {}", path.display()),
            Err(e) => eprintln!("# could not write BENCH_{}.json: {e}", self.name),
        }
    }
}

/// Extract the first numeric value stored under `"key"` in a JSON text.
///
/// Purpose-built for reading the committed baseline reports back without a
/// JSON parser dependency: the reports are machine-written flat objects,
/// so a scan for `"key"` followed by `:` and a number is unambiguous.
pub fn json_num_field(text: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\"");
    let mut from = 0;
    while let Some(pos) = text[from..].find(&needle) {
        let rest = &text[from + pos + needle.len()..];
        let rest = rest.trim_start();
        if let Some(rest) = rest.strip_prefix(':') {
            let rest = rest.trim_start();
            let end = rest
                .find(|c: char| !(c.is_ascii_digit() || matches!(c, '-' | '+' | '.' | 'e' | 'E')))
                .unwrap_or(rest.len());
            if let Ok(v) = rest[..end].parse() {
                return Some(v);
            }
        }
        from += pos + needle.len();
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_escaped_flat_object() {
        let mut r = Report::new("unit");
        r.num("pi", 3.25)
            .int("n", -4)
            .flag("ok", true)
            .set("label", Value::Str("he said \"hi\"\n".into()));
        let json = r.render();
        assert!(json.starts_with("{\"bench\":\"unit\""));
        assert!(json.contains("\"cpu_parallelism\":"), "{json}");
        assert!(
            json_num_field(&json, "cpu_parallelism").unwrap_or(-1.0) >= 1.0,
            "core count recorded: {json}"
        );
        assert!(json.contains("\"pi\":3.25"));
        assert!(json.contains("\"n\":-4"));
        assert!(json.contains("\"ok\":true"));
        assert!(json.contains("\\\"hi\\\"\\n"));
        assert!(
            json.contains("\"engine_metrics\":{"),
            "metrics snapshot embedded"
        );
        // Balanced braces — the Raw splice must not break the object.
        let opens = json.matches('{').count();
        let closes = json.matches('}').count();
        assert_eq!(opens, closes);
    }

    #[test]
    fn set_replaces_existing_key() {
        let mut r = Report::new("unit");
        r.num("x", 1.0);
        r.num("x", 2.0);
        let json = r.render();
        assert!(json.contains("\"x\":2"));
        assert!(!json.contains("\"x\":1"));
    }

    #[test]
    fn nested_rows_render() {
        let mut r = Report::new("unit");
        r.set(
            "rows",
            Value::Arr(vec![
                obj(vec![("n", Value::Int(10)), ("secs", Value::Num(0.5))]),
                obj(vec![("n", Value::Int(20)), ("secs", Value::Num(1.5))]),
            ]),
        );
        let json = r.render();
        assert!(json.contains("\"rows\":[{\"n\":10,\"secs\":0.5},{\"n\":20,\"secs\":1.5}]"));
    }

    #[test]
    fn json_num_field_reads_written_report() {
        let mut r = Report::new("unit");
        r.num("overhead_ratio", 1.0625);
        r.int("rows", 5000);
        let json = r.render();
        assert_eq!(json_num_field(&json, "overhead_ratio"), Some(1.0625));
        assert_eq!(json_num_field(&json, "rows"), Some(5000.0));
        assert_eq!(json_num_field(&json, "missing"), None);
    }

    #[test]
    fn write_to_produces_file() {
        let dir = std::env::temp_dir().join(format!("mlql-bench-report-{}", std::process::id()));
        let mut r = Report::new("write_test");
        r.num("v", 1.0);
        let path = r.write_to(&dir).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("\"bench\":\"write_test\""));
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
