//! Shared helpers for the benchmark harnesses (see DESIGN.md's experiment
//! index: one binary per table/figure of the paper's evaluation).

pub mod report;

use mlql_datagen::{names_dataset, NamesConfig};
use mlql_kernel::{Database, Datum, Result};
use mlql_mural::{install, mdi, Mural};
use std::time::Instant;

/// Environment-tunable scale factor (`MLQL_SCALE`, default 1).  The paper
/// ran minutes-to-hours experiments on a 2.3 GHz Pentium-IV; scale 1 keeps
/// every harness in CI territory while preserving the comparative shapes.
pub fn scale() -> usize {
    std::env::var("MLQL_SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1)
        .max(1)
}

/// Time a closure, returning (result, seconds).
pub fn timed<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed().as_secs_f64())
}

/// Pearson correlation coefficient.
pub fn pearson(xs: &[f64], ys: &[f64]) -> f64 {
    assert_eq!(xs.len(), ys.len());
    let n = xs.len() as f64;
    if n < 2.0 {
        return 0.0;
    }
    let mx = xs.iter().sum::<f64>() / n;
    let my = ys.iter().sum::<f64>() / n;
    let mut num = 0.0;
    let mut dx = 0.0;
    let mut dy = 0.0;
    for (x, y) in xs.iter().zip(ys) {
        num += (x - mx) * (y - my);
        dx += (x - mx).powi(2);
        dy += (y - my).powi(2);
    }
    if dx == 0.0 || dy == 0.0 {
        0.0
    } else {
        num / (dx * dy).sqrt()
    }
}

/// Create a fresh in-memory database with the Mural extension installed.
pub fn mural_db() -> (Database, Mural) {
    let mut db = Database::new_in_memory();
    let mural = install(&mut db).expect("install mural");
    (db, mural)
}

/// Load a names table `name(n UNITEXT)` with `records` rows of the
/// multilingual names dataset.  Uses the bulk `insert_row` path.
pub fn load_names_table(
    db: &mut Database,
    mural: &Mural,
    table: &str,
    records: usize,
    seed: u64,
) -> Result<()> {
    db.execute(&format!("CREATE TABLE {table} (name UNITEXT)"))?;
    let data = names_dataset(
        &mural.langs,
        &NamesConfig {
            records,
            noise: 0.25,
            seed,
            ..NamesConfig::default()
        },
    );
    for rec in data {
        let d = mlql_mural::types::unitext_datum(mural.unitext_type, &rec.name);
        db.insert_row(table, vec![d])?;
    }
    db.analyze(table)?;
    Ok(())
}

/// Load the outside-the-server shadow of a names table:
/// `name TEXT, ph TEXT, mdi INT` — materialized phoneme strings and MDI
/// keys, the way an outside deployment prepares its data (§5.3: "the
/// performance experiments were run after the phoneme strings ... had been
/// materialized and stored explicitly in the table").
pub fn load_names_outside(
    db: &mut Database,
    mural: &Mural,
    table: &str,
    records: usize,
    seed: u64,
) -> Result<()> {
    db.execute(&format!(
        "CREATE TABLE {table} (name TEXT, ph TEXT, mdi INT)"
    ))?;
    let data = names_dataset(
        &mural.langs,
        &NamesConfig {
            records,
            noise: 0.25,
            seed,
            ..NamesConfig::default()
        },
    );
    for rec in data {
        let ph = mural.converters.phonemes_of(&rec.name);
        let key = mdi::mdi_key(ph.as_bytes(), mdi::DEFAULT_ANCHOR);
        db.insert_row(
            table,
            vec![
                Datum::text(rec.name.text()),
                Datum::text(String::from_utf8_lossy(ph.as_bytes())),
                Datum::Int(key),
            ],
        )?;
    }
    db.analyze(table)?;
    Ok(())
}

/// Transitive closure computed *inside the engine* against a relational
/// `edges(child INT, parent INT)` table — the "core" curves of Figure 8.
/// No SQL parsing, no function-manager crossings: frontier expansion calls
/// the heap/index access layer directly, the way the paper's in-kernel C
/// implementation did before pinning.  `index_name = Some(..)` uses the
/// B+Tree on the `parent` attribute (§5.4); `None` seq-scans per node.
pub fn core_closure_via_tables(
    db: &Database,
    edges_table: &str,
    index_name: Option<&str>,
    root: i64,
) -> Result<usize> {
    use mlql_kernel::storage::{decode_row, split_version};
    use std::collections::HashSet;

    let meta = db.catalog().table(edges_table)?;
    let arity = meta.schema.len();
    let index = index_name.and_then(|n| {
        db.catalog()
            .indexes_of(meta.id)
            .into_iter()
            .find(|i| i.name == n)
    });
    // Direct heap access still honors MVCC: read under a fresh snapshot.
    let vis = db.engine().fresh_visibility();
    let mut seen: HashSet<i64> = HashSet::new();
    let mut stack = vec![root];
    seen.insert(root);
    while let Some(node) = stack.pop() {
        match &index {
            Some(idx) => {
                let hits = idx
                    .instance
                    .read()
                    .search("eq", &Datum::Int(node), &Datum::Null)?;
                for tid in hits.tids {
                    if let Some(bytes) = meta.heap.get(db.pool(), tid)? {
                        let (xmin, xmax, rest) = split_version(&bytes)?;
                        if !vis.sees(xmin, xmax) {
                            continue;
                        }
                        let row = decode_row(rest, arity)?;
                        if let Some(child) = row[0].as_int() {
                            if seen.insert(child) {
                                stack.push(child);
                            }
                        }
                    }
                }
            }
            None => {
                let mut children = Vec::new();
                meta.heap.scan(db.pool(), |_, bytes| {
                    let Ok((xmin, xmax, rest)) = split_version(bytes) else {
                        return true;
                    };
                    if !vis.sees(xmin, xmax) {
                        return true;
                    }
                    if let Ok(row) = decode_row(rest, arity) {
                        if row[1].as_int() == Some(node) {
                            if let Some(c) = row[0].as_int() {
                                children.push(c);
                            }
                        }
                    }
                    true
                })?;
                for child in children {
                    if seen.insert(child) {
                        stack.push(child);
                    }
                }
            }
        }
    }
    Ok(seen.len())
}

/// Render a markdown-ish results table row.
pub fn print_row(cols: &[&str], widths: &[usize]) {
    let cells: Vec<String> = cols
        .iter()
        .zip(widths)
        .map(|(c, w)| format!("{c:<w$}", w = w))
        .collect();
    println!("| {} |", cells.join(" | "));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pearson_of_perfect_line_is_one() {
        let xs: Vec<f64> = (0..10).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 3.0 * x + 1.0).collect();
        assert!((pearson(&xs, &ys) - 1.0).abs() < 1e-12);
        let neg: Vec<f64> = xs.iter().map(|x| -x).collect();
        assert!((pearson(&xs, &neg) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn pearson_degenerate_cases() {
        assert_eq!(pearson(&[1.0], &[2.0]), 0.0);
        assert_eq!(pearson(&[1.0, 1.0], &[1.0, 2.0]), 0.0);
    }

    #[test]
    fn loaders_build_queryable_tables() {
        let (mut db, mural) = mural_db();
        load_names_table(&mut db, &mural, "names", 200, 1).unwrap();
        let n = db.query("SELECT count(*) FROM names").unwrap();
        assert!(n[0][0].eq_sql(&Datum::Int(200)));
        load_names_outside(&mut db, &mural, "names_out", 200, 1).unwrap();
        let m = db
            .query("SELECT count(*) FROM names_out WHERE mdi >= 0")
            .unwrap();
        assert!(m[0][0].eq_sql(&Datum::Int(200)));
    }
}
