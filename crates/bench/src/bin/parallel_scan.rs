//! Morsel-driven parallel scan: serial vs N-worker speedup curves on the
//! Table 4 ψ seq-scan workload, plus an Ω scan sharing the sharded
//! closure cache across workers.
//!
//! The ψ predicate is CPU-heavy (phoneme conversion + banded edit
//! distance per row, Table 3), which is exactly the regime where
//! morsel-driven parallelism pays: the planner's cost model divides the
//! CPU term across workers at 85% efficiency, so on a machine with ≥ 4
//! cores the 4-worker scan should run ≥ 2x faster than serial.  The
//! report records `cpu_parallelism` so a run on fewer cores (where the
//! workers timeshare one core and the curve flattens to ~1x) is
//! interpretable rather than alarming.
//!
//! Run: `cargo run --release -p mlql-bench --bin parallel_scan`
//! Scale with `MLQL_SCALE`; pin output with `MLQL_BENCH_DIR`.

use mlql_bench::report::Report;
use mlql_bench::{load_names_table, mural_db, scale, timed};
use mlql_kernel::Database;

/// Probe names of the Table 4 scan measurements (averaged).
const PROBES: &[(&str, &str)] = &[
    ("Nehru", "English"),
    ("Gandhi", "English"),
    ("Miller", "English"),
    ("Krishnan", "English"),
];

/// Measurement repetitions; the minimum is reported (steady-state, least
/// scheduler noise).
const REPS: usize = 3;

fn psi_scan_secs(db: &mut Database, workers: usize) -> f64 {
    db.execute(&format!("SET parallel_workers = {workers}"))
        .unwrap();
    let mut best = f64::INFINITY;
    for _ in 0..REPS {
        let (_, secs) = timed(|| {
            for (name, lang) in PROBES {
                db.execute(&format!(
                    "SELECT count(*) FROM names WHERE name LEXEQUAL unitext('{name}','{lang}')"
                ))
                .unwrap();
            }
        });
        best = best.min(secs / PROBES.len() as f64);
    }
    best
}

fn omega_scan_secs(db: &mut Database, workers: usize) -> f64 {
    db.execute(&format!("SET parallel_workers = {workers}"))
        .unwrap();
    let mut best = f64::INFINITY;
    for _ in 0..REPS {
        let (_, secs) = timed(|| {
            db.execute(
                "SELECT count(*) FROM docs WHERE category SEMEQUAL unitext('History','English')",
            )
            .unwrap();
        });
        best = best.min(secs);
    }
    best
}

fn main() {
    let n_names = 2000 * scale();
    println!("# Parallel morsel-driven scan: serial vs N workers");
    println!(
        "# names table: {n_names} rows; ψ threshold 3; scale {}",
        scale()
    );

    let (mut db, mural) = mural_db();
    db.execute("SET lexequal.threshold = 3").unwrap();
    load_names_table(&mut db, &mural, "names", n_names, 1).unwrap();

    // Ω workload: documents categorized by taxonomy word forms.
    db.execute("CREATE TABLE docs (category UNITEXT)").unwrap();
    let cats = ["History", "Biography", "Fiction", "Novel", "Science"];
    for i in 0..n_names {
        let w = cats[i % cats.len()];
        db.execute(&format!(
            "INSERT INTO docs VALUES (unitext('{w}','English'))"
        ))
        .unwrap();
    }
    db.execute("ANALYZE docs").unwrap();

    // The 4-worker ψ plan must actually be parallel, or the curve below
    // silently measures serial-vs-serial.
    db.execute("SET parallel_workers = 4").unwrap();
    let plan = db
        .execute(
            "EXPLAIN SELECT count(*) FROM names WHERE name LEXEQUAL unitext('Nehru','English')",
        )
        .unwrap()
        .explain
        .expect("explain text");
    assert!(
        plan.contains("Parallel Seq Scan on names"),
        "expected a parallel plan at 4 workers:\n{plan}"
    );

    let serial = psi_scan_secs(&mut db, 1);
    let two = psi_scan_secs(&mut db, 2);
    let four = psi_scan_secs(&mut db, 4);
    let omega_serial = omega_scan_secs(&mut db, 1);
    let omega_four = omega_scan_secs(&mut db, 4);

    let speedup_2 = serial / two.max(1e-9);
    let speedup_4 = serial / four.max(1e-9);
    let omega_speedup_4 = omega_serial / omega_four.max(1e-9);
    let cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    println!();
    println!("| workers | ψ scan (ms) | speedup |");
    println!("|---------|-------------|---------|");
    println!("|       1 | {:>11.3} |    1.00 |", serial * 1e3);
    println!("|       2 | {:>11.3} | {speedup_2:>7.2} |", two * 1e3);
    println!("|       4 | {:>11.3} | {speedup_4:>7.2} |", four * 1e3);
    println!();
    println!(
        "Ω scan: serial {:.3} ms, 4 workers {:.3} ms ({omega_speedup_4:.2}x, sharded closure cache)",
        omega_serial * 1e3,
        omega_four * 1e3
    );
    println!("machine cpu parallelism: {cpus}");
    if cpus < 4 {
        println!(
            "NOTE: {cpus} core(s) available — 4 workers timeshare, the speedup \
             curve flattens; run on ≥ 4 cores for the ≥ 2x ψ figure."
        );
    }

    let mut rep = Report::new("parallel");
    rep.int("names_rows", n_names as i64)
        .int("cpu_parallelism", cpus as i64)
        .num("psi_serial_ms", serial * 1e3)
        .num("psi_workers2_ms", two * 1e3)
        .num("psi_workers4_ms", four * 1e3)
        .num("psi_speedup_2", speedup_2)
        .num("psi_speedup_4", speedup_4)
        .num("omega_serial_ms", omega_serial * 1e3)
        .num("omega_workers4_ms", omega_four * 1e3)
        .num("omega_speedup_4", omega_speedup_4);
    rep.write_and_note();
}
