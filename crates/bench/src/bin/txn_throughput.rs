//! Transaction throughput under MVCC snapshot isolation: committed
//! transactions per second at 1, 2 and 4 concurrent sessions (disjoint
//! keys, so no conflicts), the conflict-abort rate when sessions contend
//! on a small hot set under first-updater-wins, and the headline MVCC
//! property — a read-only ψ scan runs at the same latency whether or not
//! another session is sitting on an open write transaction, because
//! readers never block on writers.

use mlql_bench::report::{obj, Report, Value};
use mlql_bench::{load_names_table, mural_db, scale, timed};
use mlql_kernel::obs;
use mlql_kernel::{Database, Error};
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

/// Commit-only loop: each session owns a private key range, so every
/// transaction commits.  Returns (committed txns, txns/s).
fn run_commit_config(db: &Database, sessions: usize, secs: f64) -> (u64, f64) {
    let stop = AtomicBool::new(false);
    let workers: Vec<_> = (0..sessions).map(|_| db.connect()).collect();
    let start = Instant::now();
    let total: u64 = std::thread::scope(|scope| {
        let stop = &stop;
        let handles: Vec<_> = workers
            .into_iter()
            .enumerate()
            .map(|(slot, mut session)| {
                scope.spawn(move || {
                    let mut done = 0u64;
                    while !stop.load(Ordering::Relaxed) {
                        let k = 1_000_000 * (slot as u64 + 1) + done;
                        session.execute("BEGIN").expect("begin");
                        session
                            .execute(&format!("INSERT INTO kv VALUES ({k}, 1)"))
                            .expect("insert");
                        session
                            .execute(&format!("UPDATE kv SET v = 2 WHERE k = {k}"))
                            .expect("update own row");
                        session.execute("COMMIT").expect("commit");
                        done += 1;
                    }
                    done
                })
            })
            .collect();
        std::thread::sleep(Duration::from_secs_f64(secs));
        stop.store(true, Ordering::Relaxed);
        handles.into_iter().map(|h| h.join().unwrap()).sum()
    });
    let elapsed = start.elapsed().as_secs_f64();
    (total, total as f64 / elapsed)
}

/// Contention loop: every session updates the same `hot` keys, so
/// first-updater-wins aborts the laggards.  Returns (commits, aborts).
fn run_conflict_config(db: &Database, sessions: usize, hot: u64, secs: f64) -> (u64, u64) {
    let stop = AtomicBool::new(false);
    let workers: Vec<_> = (0..sessions).map(|_| db.connect()).collect();
    std::thread::scope(|scope| {
        let stop = &stop;
        let handles: Vec<_> = workers
            .into_iter()
            .enumerate()
            .map(|(slot, mut session)| {
                scope.spawn(move || {
                    let (mut commits, mut aborts) = (0u64, 0u64);
                    let mut i = slot as u64;
                    while !stop.load(Ordering::Relaxed) {
                        let k = i % hot;
                        i += 1;
                        session.execute("BEGIN").expect("begin");
                        match session.execute(&format!("UPDATE kv SET v = v + 1 WHERE k = {k}")) {
                            Ok(_) => {
                                session.execute("COMMIT").expect("commit");
                                commits += 1;
                            }
                            Err(Error::Serialization(_)) => {
                                session.execute("ROLLBACK").expect("rollback");
                                aborts += 1;
                            }
                            Err(e) => panic!("unexpected error under contention: {e}"),
                        }
                    }
                    (commits, aborts)
                })
            })
            .collect();
        std::thread::sleep(Duration::from_secs_f64(secs));
        stop.store(true, Ordering::Relaxed);
        handles.into_iter().fold((0, 0), |(c, a), h| {
            let (hc, ha) = h.join().unwrap();
            (c + hc, a + ha)
        })
    })
}

/// Mean latency (seconds) of `iters` back-to-back ψ scans from one session.
fn psi_scan_latency(db: &Database, sql: &str, iters: usize) -> f64 {
    let mut s = db.connect();
    s.execute("SET lexequal.threshold = 2").unwrap();
    s.query(sql).unwrap(); // warm plan cache + buffers
    let (_, secs) = timed(|| {
        for _ in 0..iters {
            s.query(sql).expect("read-only scan");
        }
    });
    secs / iters as f64
}

fn main() {
    let n = 4_000 * scale();
    let measure_secs = 0.8;
    let scan_iters = 40;
    let cpus = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);
    let (mut db, mural) = mural_db();
    load_names_table(&mut db, &mural, "names", n, 1).unwrap();
    db.execute("CREATE TABLE kv (k INT, v INT)").unwrap();
    for k in 0..64 {
        db.execute(&format!("INSERT INTO kv VALUES ({k}, 0)"))
            .unwrap();
    }
    db.execute("ANALYZE kv").unwrap();

    println!("# txn throughput: {n} names rows, {measure_secs}s per config, {cpus} cpu(s)");
    let metrics = obs::metrics();

    // --- committed-transaction throughput, disjoint keys -------------
    let mut rows = Vec::new();
    let mut tps_at = std::collections::HashMap::new();
    for sessions in [1usize, 2, 4] {
        let (total, tps) = run_commit_config(&db, sessions, measure_secs);
        println!("sessions={sessions}: {total} committed txns, {tps:.0} txn/s");
        tps_at.insert(sessions, tps);
        rows.push(obj(vec![
            ("sessions", Value::Int(sessions as i64)),
            ("committed", Value::Int(total as i64)),
            ("txn_per_s", Value::Num(tps)),
        ]));
    }

    // --- conflict-abort rate on a hot set ----------------------------
    let conflicts_before = metrics.txn_conflicts_total.get();
    let (commits, aborts) = run_conflict_config(&db, 4, 8, measure_secs);
    let abort_rate = aborts as f64 / (commits + aborts).max(1) as f64;
    let conflict_delta = metrics.txn_conflicts_total.get() - conflicts_before;
    println!(
        "contention (4 sessions, 8 hot keys): {commits} commits, {aborts} aborts \
         (rate {abort_rate:.3}, counter delta {conflict_delta})"
    );

    // --- read-only ψ scan latency: idle vs open write txn ------------
    let psi = "SELECT count(*) FROM names WHERE name LEXEQUAL unitext('Nehru','English')";
    let idle = psi_scan_latency(&db, psi, scan_iters);
    // A writer parks on an open transaction with uncommitted lexicon
    // inserts; the reader's scans must neither block nor slow down —
    // snapshot visibility filters the in-flight versions for free.
    let mut writer = db.connect();
    writer.execute("BEGIN").unwrap();
    for i in 0..50 {
        writer
            .execute(&format!(
                "INSERT INTO names VALUES (unitext('Writer{i}','English'))"
            ))
            .unwrap();
    }
    let with_writer = psi_scan_latency(&db, psi, scan_iters);
    writer.execute("ROLLBACK").unwrap();
    let overhead = with_writer / idle;
    println!(
        "ψ scan: idle {:.3} ms, with open write txn {:.3} ms ({overhead:.2}x)",
        idle * 1e3,
        with_writer * 1e3
    );

    let mut rep = Report::new("txn");
    rep.int("rows", n as i64)
        .num("measure_secs", measure_secs)
        .set("commit_configs", Value::Arr(rows))
        .num("txn_per_s_1_session", tps_at[&1])
        .num("txn_per_s_2_sessions", tps_at[&2])
        .num("txn_per_s_4_sessions", tps_at[&4])
        .int("conflict_commits", commits as i64)
        .int("conflict_aborts", aborts as i64)
        .num("conflict_abort_rate", abort_rate)
        .int("conflict_counter_delta", conflict_delta as i64)
        .num("psi_scan_ms_idle", idle * 1e3)
        .num("psi_scan_ms_with_open_writer", with_writer * 1e3)
        .num("open_writer_overhead_ratio", overhead)
        // Readers never block on writers: the scan must complete (it did,
        // or we'd still be here) and stay within noise of the idle
        // latency — 2x is far above timing jitter yet far below any
        // lock-wait, which would stall for the writer's whole lifetime.
        .flag("non_blocking_reads_target_met", overhead < 2.0)
        .flag(
            "conflicts_detected_under_contention",
            aborts > 0 && conflict_delta >= aborts,
        );
    rep.write_and_note();
}
