//! Figure 7 / Example 5 — the motivating optimization example (§5.2.1).
//!
//! Schema: Author(authorid, aname), Publisher(pubid, pname),
//! Book(bookid, authorid, pubid).  Query: *books whose author's name
//! sounds like a publisher's name* (threshold 3).
//!
//! * **Plan 1** applies ψ early — Author ⋈ψ Publisher first, then joins
//!   Book on authorid.
//! * **Plan 2** materializes Book ⋈ Author first, then runs ψ between that
//!   (much larger) intermediate and Publisher.
//!
//! The paper reports predicted costs 2,439,370 vs 7,513,852 and runtimes
//! 82.15 s vs 2338.31 s, with the optimizer picking Plan 1.  We force each
//! plan with `SET force_join_order = 1` and the FROM-clause order, then
//! let the optimizer choose freely and check it matches Plan 1's cost.
//!
//! Run: `cargo run --release -p mlql-bench --bin fig7_plan_choice`

use mlql_bench::report::Report;
use mlql_bench::{mural_db, scale, timed};
use mlql_datagen::{names_dataset, NamesConfig};
use mlql_kernel::{Database, Datum};
use mlql_mural::types::unitext_datum;
use mlql_mural::Mural;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn load(db: &mut Database, mural: &Mural) {
    let n_auth = 1200 * scale();
    let n_pub = 300 * scale();
    let n_book = 3000 * scale();
    db.execute("CREATE TABLE author (authorid INT, aname UNITEXT)")
        .unwrap();
    db.execute("CREATE TABLE publisher (pubid INT, pname UNITEXT)")
        .unwrap();
    db.execute("CREATE TABLE book (bookid INT, authorid INT, pubid INT)")
        .unwrap();
    let a = names_dataset(
        &mural.langs,
        &NamesConfig {
            records: n_auth,
            noise: 0.25,
            seed: 11,
            ..NamesConfig::default()
        },
    );
    for (i, rec) in a.iter().enumerate() {
        db.insert_row(
            "author",
            vec![
                Datum::Int(i as i64),
                unitext_datum(mural.unitext_type, &rec.name),
            ],
        )
        .unwrap();
    }
    let p = names_dataset(
        &mural.langs,
        &NamesConfig {
            records: n_pub,
            noise: 0.25,
            seed: 22,
            ..NamesConfig::default()
        },
    );
    for (i, rec) in p.iter().enumerate() {
        db.insert_row(
            "publisher",
            vec![
                Datum::Int(i as i64),
                unitext_datum(mural.unitext_type, &rec.name),
            ],
        )
        .unwrap();
    }
    let mut rng = StdRng::seed_from_u64(33);
    for i in 0..n_book {
        db.insert_row(
            "book",
            vec![
                Datum::Int(i as i64),
                Datum::Int(rng.gen_range(0..n_auth) as i64),
                Datum::Int(rng.gen_range(0..n_pub) as i64),
            ],
        )
        .unwrap();
    }
    for t in ["author", "publisher", "book"] {
        db.execute(&format!("ANALYZE {t}")).unwrap();
    }
    db.execute("SET lexequal.threshold = 3").unwrap();
}

fn run(db: &mut Database, label: &str, sql: &str, forced: bool) -> (f64, f64) {
    db.execute(&format!(
        "SET force_join_order = {}",
        if forced { 1 } else { 0 }
    ))
    .unwrap();
    let plan = db.plan_select(sql).unwrap();
    let (res, secs) = timed(|| db.execute(sql).unwrap());
    println!("--- {label} ---");
    println!("{}", plan.explain());
    println!("predicted cost: {:>14.0}", plan.est_cost);
    println!(
        "runtime:        {:>11.2} s   (result: {} rows -> count = {})",
        secs,
        res.rows.len(),
        res.rows[0][0]
    );
    println!();
    (plan.est_cost, secs)
}

fn main() {
    println!("# Figure 7 / Example 5: Plan 1 vs Plan 2 (threshold 3)");
    let (mut db, mural) = mural_db();
    load(&mut db, &mural);

    // Plan 1: ψ early — FROM order author, publisher, book.
    let plan1_sql = "SELECT count(*) FROM author a, publisher p, book b \
                     WHERE a.aname LEXEQUAL p.pname AND b.authorid = a.authorid";
    // Plan 2: Book ⋈ Author materialized first, ψ last.
    let plan2_sql = "SELECT count(*) FROM book b, author a, publisher p \
                     WHERE b.authorid = a.authorid AND a.aname LEXEQUAL p.pname";

    let (c1, t1) = run(&mut db, "Plan 1 (forced: psi early)", plan1_sql, true);
    let (c2, t2) = run(&mut db, "Plan 2 (forced: join Book first)", plan2_sql, true);

    // Free choice: the optimizer must land on (approximately) Plan 1.
    let (cf, tf) = run(&mut db, "Optimizer free choice", plan1_sql, false);

    println!(
        "# Summary (paper: Plan 1 cost 2,439,370 / 82.15 s; Plan 2 cost 7,513,852 / 2338.31 s)"
    );
    println!("plan1: cost {c1:>14.0}  runtime {t1:>9.2} s");
    println!("plan2: cost {c2:>14.0}  runtime {t2:>9.2} s");
    println!("free:  cost {cf:>14.0}  runtime {tf:>9.2} s");
    println!();
    let cost_ok = c1 < c2;
    let time_ok = t1 < t2;
    let choice_ok = cf <= c1 * 1.001;
    println!("optimizer prefers Plan 1 by cost: {cost_ok}");
    println!("Plan 1 faster in practice:        {time_ok}");
    println!("free choice matches best plan:    {choice_ok}");

    let mut rep = Report::new("fig7_plan_choice");
    rep.num("plan1_cost", c1)
        .num("plan1_secs", t1)
        .num("plan2_cost", c2)
        .num("plan2_secs", t2)
        .num("free_cost", cf)
        .num("free_secs", tf)
        .flag("cost_prefers_plan1", cost_ok)
        .flag("plan1_faster", time_ok)
        .flag("free_choice_matches", choice_ok);
    rep.write_and_note();

    if !(cost_ok && time_ok && choice_ok) {
        std::process::exit(1);
    }
}
