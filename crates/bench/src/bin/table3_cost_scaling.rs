//! Table 3 — empirical validation of the operator cost-model *shapes*.
//!
//! The paper's Table 3 gives big-O complexities for ψ and Ω, scan and join,
//! with and without indexes.  This harness measures the real operators
//! while sweeping one parameter at a time and reports the observed scaling
//! exponent next to the model's prediction:
//!
//! * ψ scan CPU ∝ n           (records)
//! * ψ scan CPU ∝ ~k          (threshold; banded edit distance)
//! * ψ join CPU ∝ n_l · n_r   (quadratic in joint size)
//! * Ω closure ∝ closure size (pinned, hash-memoized)
//!
//! Run: `cargo run --release -p mlql-bench --bin table3_cost_scaling`

use mlql_bench::report::Report;
use mlql_bench::{load_names_table, mural_db, scale, timed};
use mlql_taxonomy::{generate, synsets_near_closure_sizes, GeneratorConfig};

/// Fitted log-log slope of (x, seconds) points.
fn loglog_slope(points: &[(f64, f64)]) -> f64 {
    let n = points.len() as f64;
    let xs: Vec<f64> = points.iter().map(|(x, _)| x.ln()).collect();
    let ys: Vec<f64> = points.iter().map(|(_, y)| y.max(1e-9).ln()).collect();
    let mx = xs.iter().sum::<f64>() / n;
    let my = ys.iter().sum::<f64>() / n;
    let num: f64 = xs.iter().zip(&ys).map(|(x, y)| (x - mx) * (y - my)).sum();
    let den: f64 = xs.iter().map(|x| (x - mx).powi(2)).sum();
    num / den
}

fn main() {
    println!("# Table 3: measured scaling vs cost-model shape");
    let s = scale();

    // ---- ψ scan ∝ n ----
    let mut points = Vec::new();
    for &n in &[1000usize, 2000, 4000] {
        let (mut db, mural) = mural_db();
        load_names_table(&mut db, &mural, "names", n * s, 7).unwrap();
        db.execute("SET lexequal.threshold = 2").unwrap();
        let (_, secs) = timed(|| {
            db.execute("SELECT count(*) FROM names WHERE name LEXEQUAL unitext('Nehru','English')")
                .unwrap();
        });
        points.push((n as f64, secs));
    }
    let slope = loglog_slope(&points);
    println!("psi scan vs n: measured exponent {slope:.2} (model: 1.0 — O(n·k·l))");

    // ---- ψ scan vs k ----
    let (mut db, mural) = mural_db();
    load_names_table(&mut db, &mural, "names", 4000 * s, 7).unwrap();
    let mut k_times = Vec::new();
    for k in [1i64, 2, 4, 8] {
        db.execute(&format!("SET lexequal.threshold = {k}"))
            .unwrap();
        let (_, secs) = timed(|| {
            db.execute("SELECT count(*) FROM names WHERE name LEXEQUAL unitext('Nehru','English')")
                .unwrap();
        });
        k_times.push((k as f64, secs));
    }
    let k_slope = loglog_slope(&k_times);
    println!("psi scan vs k: measured exponent {k_slope:.2} (model: ≤1.0 — banded DP, saturates at full matrix)");

    // ---- ψ join ∝ n_l · n_r ----
    let mut join_points = Vec::new();
    for &n in &[200usize, 400, 800] {
        let (mut db, mural) = mural_db();
        load_names_table(&mut db, &mural, "a", n * s, 1).unwrap();
        load_names_table(&mut db, &mural, "b", n * s, 2).unwrap();
        db.execute("SET lexequal.threshold = 2").unwrap();
        let (_, secs) = timed(|| {
            db.execute("SELECT count(*) FROM a, b WHERE a.name LEXEQUAL b.name")
                .unwrap();
        });
        join_points.push((n as f64, secs));
    }
    let join_slope = loglog_slope(&join_points);
    println!("psi join vs n (both sides): measured exponent {join_slope:.2} (model: 2.0 — O(n_l·n_r·k·l))");

    // ---- Ω closure ∝ closure size (pinned) ----
    let lang = mlql_unitext::LanguageRegistry::new().id_of("English");
    let taxonomy = generate(
        lang,
        &GeneratorConfig {
            synsets: 40_000 * s,
            ..Default::default()
        },
    );
    let picks = synsets_near_closure_sizes(&taxonomy, &[200, 800, 3200, 12_800]);
    let mut closure_points = Vec::new();
    for (_, synset, actual) in picks {
        // Average several runs: small closures are microseconds.
        let (_, secs) = timed(|| {
            for _ in 0..20 {
                std::hint::black_box(mlql_taxonomy::closure::compute_closure(&taxonomy, synset));
            }
        });
        closure_points.push((actual as f64, secs / 20.0));
    }
    let closure_slope = loglog_slope(&closure_points);
    println!("omega closure vs |closure|: measured exponent {closure_slope:.2} (model: 1.0 — BFS over closure)");

    println!();
    println!("# All exponents within ±0.35 of the model's shape confirm Table 3.");
    let ok = (slope - 1.0).abs() < 0.35
        && k_slope < 1.35
        && (join_slope - 2.0).abs() < 0.5
        && (closure_slope - 1.0).abs() < 0.35;
    println!("shapes hold: {ok}");

    let mut rep = Report::new("table3_cost_scaling");
    rep.num("psi_scan_n_exponent", slope)
        .num("psi_scan_k_exponent", k_slope)
        .num("psi_join_exponent", join_slope)
        .num("omega_closure_exponent", closure_slope)
        .flag("shapes_hold", ok);
    rep.write_and_note();

    if !ok {
        std::process::exit(1);
    }
}
