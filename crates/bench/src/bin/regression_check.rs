//! §5.1 regression claim — "the multilingual additions do not adversely
//! impact the current functionality and performance".
//!
//! Runs an identical standard relational workload (DDL, loads, point
//! queries, range scans, equi-joins, aggregates, deletes) on two engines —
//! one bare, one with the Mural extension installed — and compares both
//! the results (must be identical) and the runtimes (must be within noise).
//!
//! Run: `cargo run --release -p mlql-bench --bin regression_check`
//!
//! Writes `BENCH_regression_check.json` (see `mlql_bench::report`).  With
//! `--baseline <path>` the run also compares its normalized latency (the
//! extended/plain wall-time ratio, which cancels out machine speed)
//! against a committed baseline report and fails on a >20% regression —
//! this is what `scripts/bench_check.sh` gates CI on.

use mlql_bench::report::{json_num_field, Report};
use mlql_bench::{scale, timed};
use mlql_kernel::Database;
use mlql_mural::install;

fn workload(db: &mut Database, rows: usize) -> Vec<String> {
    let mut outputs = Vec::new();
    db.execute("CREATE TABLE orders (id INT, customer TEXT, amount FLOAT, region INT)")
        .unwrap();
    db.execute("CREATE TABLE customers (name TEXT, region INT)")
        .unwrap();
    for i in 0..rows {
        db.execute(&format!(
            "INSERT INTO orders VALUES ({i}, 'cust{}', {}.5, {})",
            i % 97,
            i % 450,
            i % 12
        ))
        .unwrap();
    }
    for i in 0..97 {
        db.execute(&format!(
            "INSERT INTO customers VALUES ('cust{i}', {})",
            i % 12
        ))
        .unwrap();
    }
    db.execute("CREATE INDEX orders_id ON orders (id) USING btree")
        .unwrap();
    db.execute("ANALYZE orders").unwrap();
    db.execute("ANALYZE customers").unwrap();
    let queries = [
        "SELECT count(*) FROM orders WHERE id = 137",
        "SELECT count(*) FROM orders WHERE amount < 100.0",
        "SELECT count(*), sum(amount) FROM orders WHERE region = 3",
        "SELECT count(*) FROM orders o, customers c WHERE o.customer = c.name AND c.region = 5",
        "SELECT region, count(*) FROM orders GROUP BY region ORDER BY region",
        "SELECT customer FROM orders ORDER BY amount DESC LIMIT 5",
    ];
    for q in queries {
        let r = db.execute(q).unwrap();
        outputs.push(format!(
            "{q} => {:?}",
            r.rows
                .iter()
                .map(|row| row.iter().map(|d| d.to_string()).collect::<Vec<_>>())
                .collect::<Vec<_>>()
        ));
    }
    db.execute("DELETE FROM orders WHERE region = 11").unwrap();
    let r = db.execute("SELECT count(*) FROM orders").unwrap();
    outputs.push(format!("post-delete count => {}", r.rows[0][0]));
    outputs
}

fn main() {
    let baseline_path = {
        let mut args = std::env::args().skip(1);
        let mut path = None;
        while let Some(a) = args.next() {
            match a.as_str() {
                "--baseline" => path = args.next(),
                other => {
                    eprintln!("unknown argument {other:?} (expected --baseline <path>)");
                    std::process::exit(2);
                }
            }
        }
        path
    };
    let rows = 5000 * scale();
    println!("# Regression check: standard workload with and without Mural installed");
    println!("# {rows} order rows, scale {}", scale());

    // Warm-up run to stabilize allocator/caches, then measured runs.
    let trials = 3;
    let mut plain_secs = Vec::new();
    let mut extended_secs = Vec::new();
    let mut plain_out = Vec::new();
    let mut ext_out = Vec::new();
    for t in 0..=trials {
        let mut plain = Database::new_in_memory();
        let (out_a, secs_a) = timed(|| workload(&mut plain, rows));
        let mut extended = Database::new_in_memory();
        let _mural = install(&mut extended).unwrap();
        let (out_b, secs_b) = timed(|| workload(&mut extended, rows));
        assert_eq!(out_a, out_b, "results must be identical");
        if t > 0 {
            plain_secs.push(secs_a);
            extended_secs.push(secs_b);
        }
        plain_out = out_a;
        ext_out = out_b;
    }
    let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    let (pa, ea) = (avg(&plain_secs), avg(&extended_secs));
    println!("plain engine:    {pa:.3} s (avg of {trials})");
    println!("with extension:  {ea:.3} s (avg of {trials})");
    let overhead = (ea / pa - 1.0) * 100.0;
    println!("overhead: {overhead:+.1}%  (paper: \"no statistically significant degradation\")");
    println!("identical results across {} checks: true", plain_out.len());
    let _ = ext_out;

    let ratio = ea / pa;
    let mut rep = Report::new("regression_check");
    rep.int("rows", rows as i64)
        .int("trials", trials as i64)
        .num("plain_secs", pa)
        .num("extended_secs", ea)
        .num("overhead_ratio", ratio)
        .num("overhead_pct", overhead)
        .int("identical_checks", plain_out.len() as i64);
    rep.write_and_note();

    // Allow generous noise; fail only on a gross regression.
    if overhead > 25.0 {
        eprintln!("FAIL: extension overhead exceeds 25%");
        std::process::exit(1);
    }

    // Baseline gate: compare the machine-independent extended/plain ratio
    // against the committed report; >20% worse is a regression.
    if let Some(path) = baseline_path {
        let text = match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("FAIL: cannot read baseline {path}: {e}");
                std::process::exit(1);
            }
        };
        let Some(base_ratio) = json_num_field(&text, "overhead_ratio") else {
            eprintln!("FAIL: baseline {path} has no overhead_ratio field");
            std::process::exit(1);
        };
        let regression = (ratio / base_ratio - 1.0) * 100.0;
        println!(
            "baseline ratio {base_ratio:.4}, current {ratio:.4} ({regression:+.1}% vs baseline)"
        );
        if ratio > base_ratio * 1.20 {
            eprintln!("FAIL: normalized latency regressed >20% vs baseline");
            std::process::exit(1);
        }
    }
}
