//! Cost-model calibration harness: the runtime analogue of Figure 6.
//!
//! Where `fig6_cost_prediction` measures predicted-cost-vs-runtime on
//! freshly planned one-shot queries, this harness exercises the *plan
//! store* feedback loop: a graded ψ/Ω workload runs repeatedly through
//! the ordinary (uninstrumented) execution path, the per-digest
//! estimate-vs-actual aggregates accumulate in `obs::planstore`, and the
//! report carries the store's fitted log-log est_cost → mean-elapsed
//! regression (slope, intercept, residual spread, Pearson) plus the
//! realized root q-error distribution.
//!
//! Run: `cargo run --release -p mlql-bench --bin calibration`
//! Scale with `MLQL_SCALE`; pin output with `MLQL_BENCH_DIR`.

use mlql_bench::report::{obj, Report, Value};
use mlql_bench::{load_names_table, mural_db, scale, timed};
use mlql_kernel::obs::planstore;

/// Executions per query: enough for per-plan means to settle without
/// inflating CI time.
const REPS: usize = 3;

/// ψ probe names (the same cross-script homophone set the other
/// harnesses use).
const PROBES: &[&str] = &["Nehru", "Gandhi", "Miller", "Krishnan"];

fn main() {
    println!("# Cost-model calibration: plan-store est-vs-actual fit");
    println!("# scale {}", scale());

    let (mut db, mural) = mural_db();
    db.execute("SET lexequal.threshold = 2").unwrap();
    db.execute("SET parallel_workers = 1").unwrap();

    // Graded ψ tables spread est_cost across roughly a decade and a half.
    let sizes = [("names_s", 500usize), ("names_m", 2000), ("names_l", 6000)];
    for (i, (table, rows)) in sizes.iter().enumerate() {
        load_names_table(&mut db, &mural, table, rows * scale(), 1 + i as u64).unwrap();
    }
    // Ω workload over the fixture taxonomy's category vocabulary.
    db.execute("CREATE TABLE book (category UNITEXT)").unwrap();
    let cats = ["History", "Historiography", "Autobiography", "Novel"];
    for i in 0..400 * scale() {
        let cat = cats[i % cats.len()];
        db.execute(&format!(
            "INSERT INTO book VALUES (unitext('{cat}','English'))"
        ))
        .unwrap();
    }
    db.execute("ANALYZE book").unwrap();

    let mut queries: Vec<String> = Vec::new();
    for (table, _) in &sizes {
        for probe in PROBES {
            queries.push(format!(
                "SELECT count(*) FROM {table} WHERE name LEXEQUAL unitext('{probe}','English')"
            ));
        }
    }
    queries.push(
        "SELECT count(*) FROM book WHERE category SEMEQUAL unitext('History','English')"
            .to_string(),
    );
    queries.push("SELECT count(*) FROM names_l".to_string());

    let (_, secs) = timed(|| {
        for _ in 0..REPS {
            for q in &queries {
                db.execute(q).unwrap();
            }
        }
    });
    println!(
        "# {} queries x {REPS} executions in {:.1} ms",
        queries.len(),
        secs * 1e3
    );

    let snap = planstore::snapshot(Some(db.engine().engine_id()));
    assert!(
        !snap.is_empty(),
        "plan store must record ordinary executions"
    );
    let fit = planstore::calibration(&snap);

    println!(
        "{:>18} {:>24} {:>6} {:>10} {:>12} {:>8}",
        "plan_digest", "root", "calls", "mean_ms", "est_cost", "qerror"
    );
    let mut points = Vec::new();
    let mut qerror_max: f64 = 1.0;
    let mut total_calls = 0u64;
    for e in &snap {
        let mean_ms = e.mean().as_secs_f64() * 1e3;
        println!(
            "{:>18} {:>24} {:>6} {:>10.3} {:>12.1} {:>8.2}",
            format!("{:016x}", e.digest),
            e.root,
            e.calls,
            mean_ms,
            e.est_cost,
            e.qerror_last
        );
        assert!(
            e.qerror_last.is_finite() && e.qerror_last >= 1.0,
            "q-error must be a finite value >= 1, got {} for {:016x}",
            e.qerror_last,
            e.digest
        );
        qerror_max = qerror_max.max(e.qerror_max);
        total_calls += e.calls;
        points.push(obj(vec![
            ("plan_digest", Value::Str(format!("{:016x}", e.digest))),
            ("root", Value::Str(e.root.clone())),
            ("calls", Value::Int(e.calls as i64)),
            ("mean_ms", Value::Num(mean_ms)),
            ("est_cost", Value::Num(e.est_cost)),
            ("est_rows", Value::Num(e.est_rows)),
            ("qerror_last", Value::Num(e.qerror_last)),
            ("qerror_max", Value::Num(e.qerror_max)),
        ]));
    }
    println!();
    println!(
        "calibration over {} plans: log10(ms) = {:.3} * log10(cost) + {:.3}",
        fit.points, fit.slope, fit.intercept
    );
    println!(
        "residual stddev {:.3} decades, log-log Pearson {:.3}",
        fit.residual_stddev, fit.pearson
    );
    println!("worst root q-error across the workload: {qerror_max:.2}");

    let mut rep = Report::new("calibration");
    rep.int("plans", snap.len() as i64)
        .int("total_calls", total_calls as i64)
        .num("slope", fit.slope)
        .num("intercept", fit.intercept)
        .num("residual_stddev", fit.residual_stddev)
        .num("loglog_pearson", fit.pearson)
        .num("qerror_root_max", qerror_max)
        .flag("plan_store_populated", !snap.is_empty())
        .set("points", Value::Arr(points));
    rep.write_and_note();

    // Every execution went through the plain path, so per-plan call
    // counts must all equal REPS — a silent recording gap would surface
    // here before any baseline diff.
    assert_eq!(
        total_calls as usize,
        queries.len() * REPS,
        "every execution lands in the plan store exactly once"
    );
}
