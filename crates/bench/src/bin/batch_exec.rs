//! Batch-execution A/B: row-at-a-time vs batch vs batch+Myers on the
//! Figure 6 ψ seq-scan workload, plus the Ω closure scan.
//!
//! Three arms over the identical single-worker scan (the regime where
//! per-tuple dispatch dominates and vectorization pays):
//!   A `SET enable_batch = 0`                — the PR 6 row-at-a-time path
//!   B batch with `SET lexequal.myers = 0`   — vectorized spine, banded DP
//!   C batch defaults                        — vectorized spine + Myers
//! Arms run interleaved, min-of-N, so drift hits all three equally.  The
//! headline number is C-vs-A (`psi_batch_myers_speedup`); B isolates how
//! much comes from the spine (memoized conversions, amortized dispatch)
//! versus the bit-parallel kernel.
//!
//! Run: `cargo run --release -p mlql-bench --bin batch_exec`
//! Scale with `MLQL_SCALE`; pin output with `MLQL_BENCH_DIR`.

use mlql_bench::report::Report;
use mlql_bench::{load_names_table, mural_db, scale, timed};
use mlql_kernel::Database;

/// Interleaved rounds; each arm keeps its per-round minimum.
const ROUNDS: usize = 5;

/// ψ probes per timed round (the Table 4 scan measurement set).
const PROBES: &[(&str, &str)] = &[
    ("Nehru", "English"),
    ("Gandhi", "English"),
    ("Miller", "English"),
    ("Krishnan", "English"),
];

fn psi_scan_secs(db: &mut Database) -> f64 {
    let (_, secs) = timed(|| {
        for (name, lang) in PROBES {
            db.execute(&format!(
                "SELECT count(*) FROM names WHERE name LEXEQUAL unitext('{name}','{lang}')"
            ))
            .unwrap();
        }
    });
    secs / PROBES.len() as f64
}

fn omega_scan_secs(db: &mut Database) -> f64 {
    let (_, secs) = timed(|| {
        db.execute(
            "SELECT count(*) FROM docs WHERE category SEMEQUAL unitext('History','English')",
        )
        .unwrap();
    });
    secs
}

/// Put the session into one of the three arms.
fn arm(db: &mut Database, enable_batch: bool, myers: bool) {
    db.execute(&format!(
        "SET enable_batch = {}",
        if enable_batch { 1 } else { 0 }
    ))
    .unwrap();
    db.execute(&format!(
        "SET lexequal.myers = {}",
        if myers { 1 } else { 0 }
    ))
    .unwrap();
}

fn main() {
    let n_names = 2000 * scale();
    println!("# Batch execution A/B: row vs batch vs batch+Myers (ψ seq scan)");
    println!(
        "# names table: {n_names} rows; ψ threshold 3; scale {}",
        scale()
    );

    let (mut db, mural) = mural_db();
    db.execute("SET lexequal.threshold = 3").unwrap();
    // Single worker: isolate per-tuple dispatch + kernel cost from
    // scheduling; the morsel path reuses the same batch kernels anyway.
    db.execute("SET parallel_workers = 1").unwrap();
    load_names_table(&mut db, &mural, "names", n_names, 1).unwrap();

    // Ω workload: repeated category values, the closure-memoization case.
    db.execute("CREATE TABLE docs (category UNITEXT)").unwrap();
    let cats = ["History", "Biography", "Fiction", "Novel", "Science"];
    for i in 0..n_names {
        let w = cats[i % cats.len()];
        db.execute(&format!(
            "INSERT INTO docs VALUES (unitext('{w}','English'))"
        ))
        .unwrap();
    }
    db.execute("ANALYZE docs").unwrap();

    // Warm every arm (plan cache, buffer pool, phoneme + closure caches).
    for (b, m) in [(false, true), (true, false), (true, true)] {
        arm(&mut db, b, m);
        psi_scan_secs(&mut db);
        omega_scan_secs(&mut db);
    }

    let mut row = f64::INFINITY;
    let mut batch = f64::INFINITY;
    let mut batch_myers = f64::INFINITY;
    let mut omega_row = f64::INFINITY;
    let mut omega_batch = f64::INFINITY;
    for _ in 0..ROUNDS {
        arm(&mut db, false, true);
        row = row.min(psi_scan_secs(&mut db));
        omega_row = omega_row.min(omega_scan_secs(&mut db));
        arm(&mut db, true, false);
        batch = batch.min(psi_scan_secs(&mut db));
        arm(&mut db, true, true);
        batch_myers = batch_myers.min(psi_scan_secs(&mut db));
        omega_batch = omega_batch.min(omega_scan_secs(&mut db));
    }
    arm(&mut db, true, true);

    let batch_speedup = row / batch.max(1e-9);
    let batch_myers_speedup = row / batch_myers.max(1e-9);
    let omega_speedup = omega_row / omega_batch.max(1e-9);
    let target_met = batch_myers_speedup >= 1.5;

    println!();
    println!("| arm                    | ψ scan (ms) | speedup |");
    println!("|------------------------|-------------|---------|");
    println!("| A row-at-a-time        | {:>11.3} |    1.00 |", row * 1e3);
    println!(
        "| B batch (banded DP)    | {:>11.3} | {batch_speedup:>7.2} |",
        batch * 1e3
    );
    println!(
        "| C batch + Myers        | {:>11.3} | {batch_myers_speedup:>7.2} |",
        batch_myers * 1e3
    );
    println!();
    println!(
        "Ω scan: row {:.3} ms, batch {:.3} ms ({omega_speedup:.2}x, per-batch closure memo)",
        omega_row * 1e3,
        omega_batch * 1e3
    );
    println!(
        "acceptance target (batch+Myers ≥ 1.5x row): {}",
        if target_met { "MET" } else { "NOT MET" }
    );

    let mut rep = Report::new("batch");
    rep.int("names_rows", n_names as i64)
        .num("psi_row_ms", row * 1e3)
        .num("psi_batch_ms", batch * 1e3)
        .num("psi_batch_myers_ms", batch_myers * 1e3)
        .num("psi_batch_speedup", batch_speedup)
        .num("psi_batch_myers_speedup", batch_myers_speedup)
        .num("omega_row_ms", omega_row * 1e3)
        .num("omega_batch_ms", omega_batch * 1e3)
        .num("omega_batch_speedup", omega_speedup)
        .flag("speedup_target_met", target_met);
    rep.write_and_note();
}
