//! Ad-hoc profiling helper: where does the core ψ scan spend its time?
//! Not part of the experiment suite; kept for performance work.
use mlql_bench::report::Report;
use mlql_bench::{load_names_table, mural_db, timed};
use mlql_phonetics::distance::DistanceBuffer;

fn main() {
    let n = 50_000;
    let (mut db, mural) = mural_db();
    load_names_table(&mut db, &mural, "names", n, 1).unwrap();
    db.execute("SET lexequal.threshold = 3").unwrap();

    // Full SQL scan.
    let (r, secs) = timed(|| {
        db.execute("SELECT count(*) FROM names WHERE name LEXEQUAL unitext('Nehru','English')")
            .unwrap()
    });
    println!(
        "sql scan:        {secs:.4}s  ({:.2} us/row)  count={}",
        secs / n as f64 * 1e6,
        r.rows[0][0]
    );

    // Plain count(*) (no predicate) — executor + decode baseline.
    let (_, secs_plain) = timed(|| db.execute("SELECT count(*) FROM names").unwrap());
    println!(
        "plain count(*):  {secs_plain:.4}s  ({:.2} us/row)",
        secs_plain / n as f64 * 1e6
    );

    // Filter on a cheap predicate (text compare on a TEXT col absent; use name = name? skip).

    // Raw loop over decoded rows (no SQL).
    let rows = db.query("SELECT name FROM names").unwrap();
    let probe = mural.unitext("Nehru", "English").unwrap();
    let (cnt, secs2) = timed(|| {
        let mut c = 0;
        for row in &rows {
            if mlql_mural::lexequal::psi_matches(&row[0], &probe, 3, &mural.converters).unwrap() {
                c += 1;
            }
        }
        c
    });
    println!(
        "psi_matches raw: {secs2:.4}s  ({:.2} us/row) count={cnt}",
        secs2 / n as f64 * 1e6
    );

    // Pure banded distance on pre-extracted slices.
    let phs: Vec<Vec<u8>> = rows
        .iter()
        .map(|r| {
            let (_, bytes) = r[0].as_ext().unwrap();
            mlql_mural::types::phoneme_slice(bytes).unwrap().to_vec()
        })
        .collect();
    let q = {
        let (_, bytes) = probe.as_ext().unwrap();
        mlql_mural::types::phoneme_slice(bytes).unwrap().to_vec()
    };
    let (cnt2, secs3) = timed(|| {
        let mut buf = DistanceBuffer::new();
        let mut c = 0;
        for p in &phs {
            if buf.distance_within(p, &q, 3).is_some() {
                c += 1;
            }
        }
        c
    });
    println!(
        "banded only:     {secs3:.4}s  ({:.2} us/row) count={cnt2}",
        secs3 / n as f64 * 1e6
    );

    let mut rep = Report::new("profile_scan");
    rep.int("rows", n as i64)
        .num("sql_scan_secs", secs)
        .num("plain_count_secs", secs_plain)
        .num("psi_matches_raw_secs", secs2)
        .num("banded_only_secs", secs3);
    rep.write_and_note();
}
