//! Ω containment strategies head-to-head: the interval-labeled index
//! (`enable_omega_intervals = 1`, the default) vs. the cold-cache
//! memoized closure walk (`enable_omega_intervals = 0` with the shared
//! closure cache invalidated before every query).
//!
//! The workload is a Figure-8-style generated taxonomy (tree-shaped, so
//! every probe is interval-decidable) and a docs table scanned with
//! `category SEMEQUAL <root>` for roots of growing closure size.  The
//! closure path must materialize the root's closure on every cold query
//! — O(closure) hash-set construction — while the interval path answers
//! each probe with one range comparison, so the gap widens with closure
//! size.
//!
//! Two invariants are asserted in-bin:
//!  * both strategies return identical counts, and
//!  * on this tree-shaped taxonomy the interval path never falls back to
//!    the closure cache (`mlql_omega_interval_fallbacks_total` stays 0 —
//!    zero closure materializations after index build).
//!
//! Run: `cargo run --release -p mlql-bench --bin omega_intervals`
//! (`MLQL_SCALE` grows the taxonomy and table; pin output with
//! `MLQL_BENCH_DIR`.)

use mlql_bench::report::{obj, Report, Value};
use mlql_bench::{scale, timed};
use mlql_kernel::obs;
use mlql_mural::types::unitext_datum;
use mlql_taxonomy::{generate, synsets_near_closure_sizes, GeneratorConfig};
use mlql_unitext::UniText;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Measurement repetitions; the minimum is reported.  The closure arm
/// invalidates the shared cache before every rep, so each rep is a
/// genuinely cold walk.
const REPS: usize = 3;

fn main() {
    // The closure arm's cold cost is O(closure size) per query while the
    // interval arm is O(scanned rows); a WordNet-scale taxonomy with
    // closures far larger than the scanned table is exactly the regime
    // the index targets (and the Figure 8 x-axis goes to 10⁴ closures).
    let synsets = 50_000 * scale();
    let n_docs = 500 * scale();
    let targets = [1000usize, 3000, 10_000, 30_000];
    println!("# Ω containment: interval index vs cold-cache closure walk");
    println!("# taxonomy: {synsets} synsets (tree-shaped); docs: {n_docs} rows");

    let mut db = mlql_kernel::Database::new_in_memory();
    let langs = mlql_unitext::LanguageRegistry::new();
    let en = langs.id_of("English");
    let taxonomy = generate(
        en,
        &GeneratorConfig {
            synsets,
            ..GeneratorConfig::default()
        },
    );
    let picks = synsets_near_closure_sizes(&taxonomy, &targets);
    let mural = mlql_mural::install_with_taxonomy(&mut db, taxonomy).unwrap();
    let taxonomy = mural.sem.taxonomy();

    db.execute("CREATE TABLE docs (category UNITEXT)").unwrap();
    let mut rng = StdRng::seed_from_u64(0xa11);
    for _ in 0..n_docs {
        let sid = mlql_taxonomy::SynsetId(rng.gen_range(0..synsets as u32));
        let word = taxonomy.words(sid)[0].clone();
        db.insert_row(
            "docs",
            vec![unitext_datum(
                mural.unitext_type,
                &UniText::compose(word, en),
            )],
        )
        .unwrap();
    }
    db.execute("ANALYZE docs").unwrap();

    println!();
    println!(
        "{:>8} {:>8} | {:>16} {:>14} {:>9}",
        "target", "closure", "closure_cold_ms", "intervals_ms", "speedup"
    );

    let m = obs::metrics();
    let mut points = Vec::new();
    let mut closure_total = 0.0f64;
    let mut interval_total = 0.0f64;
    for &(target, synset, actual) in &picks {
        let word = taxonomy.words(synset)[0].clone();
        let sql = format!(
            "SELECT count(*) FROM docs WHERE category SEMEQUAL unitext('{word}','English')"
        );

        // Cold closure walk: invalidate the shared cache before every rep
        // so each query re-materializes the closure from scratch.
        db.execute("SET enable_omega_intervals = 0").unwrap();
        let mut t_closure = f64::INFINITY;
        let mut n_closure = 0i64;
        for _ in 0..REPS {
            mural.sem.cache.invalidate();
            let (rows, secs) = timed(|| db.query(&sql).unwrap());
            n_closure = rows[0][0].as_int().unwrap();
            t_closure = t_closure.min(secs);
        }

        // Interval path: one range comparison per probe, no cache at all.
        db.execute("SET enable_omega_intervals = 1").unwrap();
        let fallbacks_before = m.omega_interval_fallbacks_total.get();
        let misses_before = m.taxonomy_closure_cache_misses_total.get();
        let mut t_interval = f64::INFINITY;
        let mut n_interval = 0i64;
        for _ in 0..REPS {
            let (rows, secs) = timed(|| db.query(&sql).unwrap());
            n_interval = rows[0][0].as_int().unwrap();
            t_interval = t_interval.min(secs);
        }
        assert_eq!(
            n_closure, n_interval,
            "strategies disagree on root {word} (closure {actual})"
        );
        assert_eq!(
            m.omega_interval_fallbacks_total.get(),
            fallbacks_before,
            "tree-shaped taxonomy must never defer to the closure walk"
        );
        assert_eq!(
            m.taxonomy_closure_cache_misses_total.get(),
            misses_before,
            "interval scans must not materialize closures"
        );

        let speedup = t_closure / t_interval;
        closure_total += t_closure;
        interval_total += t_interval;
        println!(
            "{:>8} {:>8} | {:>14.3}   {:>12.3}   {:>8.1}x",
            target,
            actual,
            t_closure * 1000.0,
            t_interval * 1000.0,
            speedup
        );
        points.push(obj(vec![
            ("target", Value::Int(target as i64)),
            ("closure_size", Value::Int(actual as i64)),
            ("matches", Value::Int(n_interval)),
            ("closure_cold_ms", Value::Num(t_closure * 1000.0)),
            ("intervals_ms", Value::Num(t_interval * 1000.0)),
            ("speedup", Value::Num(speedup)),
        ]));
    }

    let speedup = closure_total / interval_total;
    println!();
    println!("# aggregate cold-closure/intervals speedup: {speedup:.1}x");
    assert!(
        speedup > 1.0,
        "interval index must beat the cold closure walk ({speedup:.2}x)"
    );

    let mut rep = Report::new("omega_intervals");
    rep.int("synsets", synsets as i64)
        .int("docs_rows", n_docs as i64)
        .num("speedup", speedup)
        .int(
            "interval_fallbacks",
            m.omega_interval_fallbacks_total.get() as i64,
        )
        .set("points", Value::Arr(points));
    rep.write_and_note();
}
