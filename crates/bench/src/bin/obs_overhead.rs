//! Tracing-overhead guard: the observability layer (query contexts,
//! activity slots, wait try-lock fast paths, flight recording) must stay
//! within noise of the uninstrumented engine on the Figure 6 ψ scan.
//!
//! Method: run the same CPU-heavy LexEQUAL sequential scan with
//! observability enabled (the default, `slow_query_ms = 0` so every
//! statement is flight-recorded — the worst case) and disabled
//! (`obs::set_enabled(false)`), min-of-N each, interleaved A/B so slow
//! drift hits both arms equally.  The report records the ratio; the
//! committed baseline plus `scripts/bench_check.sh` gate regressions.
//! The enabled arm also feeds the per-digest plan store (est-vs-actual
//! recording on every execution), so the measured ratio covers that
//! hot-path cost too; the run asserts the store actually populated.
//!
//! Targets: `overhead_target_met` when the ratio is ≤ 1.03 (the
//! acceptance bar); the run itself hard-fails above 1.10 so CI catches a
//! hot-path regression even before the baseline diff.
//!
//! Run: `cargo run --release -p mlql-bench --bin obs_overhead`
//! Scale with `MLQL_SCALE`; pin output with `MLQL_BENCH_DIR`.

use mlql_bench::report::Report;
use mlql_bench::{load_names_table, mural_db, scale, timed};
use mlql_kernel::{obs, Database};

/// Interleaved A/B rounds; each arm keeps its per-round minimum.
const ROUNDS: usize = 7;

/// ψ probes per timed round (amortizes per-statement noise).
const PROBES: &[(&str, &str)] = &[
    ("Nehru", "English"),
    ("Gandhi", "English"),
    ("Miller", "English"),
    ("Krishnan", "English"),
];

fn scan_secs(db: &mut Database) -> f64 {
    let (_, secs) = timed(|| {
        for (name, lang) in PROBES {
            db.execute(&format!(
                "SELECT count(*) FROM names WHERE name LEXEQUAL unitext('{name}','{lang}')"
            ))
            .unwrap();
        }
    });
    secs / PROBES.len() as f64
}

fn main() {
    let n_names = 2000 * scale();
    println!("# Observability overhead guard: instrumented vs bare ψ scan");
    println!("# names table: {n_names} rows; scale {}", scale());

    let (mut db, mural) = mural_db();
    db.execute("SET lexequal.threshold = 3").unwrap();
    // Serial scan: the per-row hot path is where instrumentation
    // overhead would show, not in worker scheduling noise.
    db.execute("SET parallel_workers = 1").unwrap();
    // Record every statement — the flight recorder's worst case.
    db.execute("SET slow_query_ms = 0").unwrap();
    load_names_table(&mut db, &mural, "names", n_names, 1).unwrap();

    // Warm both paths (plan cache, buffer pool, phoneme cache).
    obs::set_enabled(true);
    scan_secs(&mut db);
    obs::set_enabled(false);
    scan_secs(&mut db);

    let mut enabled = f64::INFINITY;
    let mut disabled = f64::INFINITY;
    for _ in 0..ROUNDS {
        obs::set_enabled(true);
        enabled = enabled.min(scan_secs(&mut db));
        obs::set_enabled(false);
        disabled = disabled.min(scan_secs(&mut db));
    }
    obs::set_enabled(true);

    // The timed enabled rounds must have exercised plan-store recording
    // (a silently skipped record would make the ratio meaningless for
    // that path).
    let plan_entries = obs::planstore::snapshot(Some(db.engine().engine_id()));
    assert!(
        !plan_entries.is_empty(),
        "enabled arm must populate the plan store"
    );
    let plan_store_calls: u64 = plan_entries.iter().map(|e| e.calls).sum();

    let ratio = enabled / disabled.max(1e-9);
    let target_met = ratio <= 1.03;
    println!();
    println!("ψ scan, observability enabled:  {:.3} ms", enabled * 1e3);
    println!("ψ scan, observability disabled: {:.3} ms", disabled * 1e3);
    println!("overhead ratio: {ratio:.4} (target ≤ 1.03, hard limit 1.10)");
    if !target_met {
        println!("NOTE: ratio above the 1.03 target — check recent hot-path changes.");
    }

    let mut rep = Report::new("obs");
    rep.int("names_rows", n_names as i64)
        .num("enabled_ms", enabled * 1e3)
        .num("disabled_ms", disabled * 1e3)
        .num("overhead_ratio", ratio)
        .int("plan_store_plans", plan_entries.len() as i64)
        .int("plan_store_calls", plan_store_calls as i64)
        .flag("overhead_target_met", target_met);
    rep.write_and_note();

    // Hard gate: a >10% regression fails the run outright (the 1.03
    // acceptance target is asserted against min-of-7 with CI-jitter
    // margin by the baseline diff in bench_check.sh).
    assert!(
        ratio <= 1.10,
        "observability overhead {ratio:.4} exceeds the 1.10 hard limit"
    );
}
