//! Concurrent-session throughput: read-only ψ/Ω lookups from 1, 2 and 4
//! sessions sharing one engine.  The Engine/Session split takes SELECTs
//! through a catalog *read* lock, so sessions on separate threads execute
//! in parallel; this harness measures the aggregate queries/second at each
//! session count and the 4-session scaling factor over the single-session
//! baseline.  Also exercises the plan cache: every session re-issues the
//! same normalized SQL, so steady state is all cache hits.

use mlql_bench::report::{obj, Report, Value};
use mlql_bench::{load_names_table, mural_db, scale};
use mlql_kernel::obs;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

/// One reader's query mix: two ψ point lookups and an Ω category lookup —
/// the shapes a multilingual OPAC session issues (§5 workload).
const QUERIES: [&str; 3] = [
    "SELECT count(*) FROM names WHERE name LEXEQUAL unitext('Nehru','English')",
    "SELECT count(*) FROM names WHERE name LEXEQUAL unitext('Miller','English')",
    "SELECT count(*) FROM concepts WHERE c SEMEQUAL unitext('History','English')",
];

fn run_config(db: &mlql_kernel::Database, sessions: usize, secs: f64) -> (u64, f64) {
    let stop = AtomicBool::new(false);
    let workers: Vec<_> = (0..sessions).map(|_| db.connect()).collect();
    let start = Instant::now();
    let total: u64 = std::thread::scope(|scope| {
        let stop = &stop;
        let handles: Vec<_> = workers
            .into_iter()
            .map(|mut session| {
                scope.spawn(move || {
                    let mut done = 0u64;
                    while !stop.load(Ordering::Relaxed) {
                        let q = QUERIES[(done % QUERIES.len() as u64) as usize];
                        session.query(q).expect("read query");
                        done += 1;
                    }
                    done
                })
            })
            .collect();
        std::thread::sleep(Duration::from_secs_f64(secs));
        stop.store(true, Ordering::Relaxed);
        handles.into_iter().map(|h| h.join().unwrap()).sum()
    });
    let elapsed = start.elapsed().as_secs_f64();
    (total, total as f64 / elapsed)
}

/// Cold-vs-hot plan-cache throughput: the same point lookup with the
/// cache flushed before every execution vs steady-state cache hits.  This
/// isolates the parse/bind/plan work the cache elides, and is meaningful
/// even on a single-CPU host where thread scaling is capped.  Uses a
/// B+Tree point lookup so execution is a few microseconds and the planning
/// fraction is visible.
fn plan_cache_speedup(db: &mut mlql_kernel::Database, iters: usize) -> (f64, f64) {
    use mlql_kernel::Datum;
    db.execute("CREATE TABLE ids (id INT)").unwrap();
    for i in 0..10_000 {
        db.insert_row("ids", vec![Datum::Int(i)]).unwrap();
    }
    db.execute("CREATE INDEX ids_id ON ids (id) USING btree")
        .unwrap();
    db.execute("ANALYZE ids").unwrap();
    let q = "SELECT count(*) FROM ids WHERE id = 1234";
    db.query(q).unwrap(); // warm buffers + cache
    let start = Instant::now();
    for _ in 0..iters {
        db.query(q).unwrap();
    }
    let hot = iters as f64 / start.elapsed().as_secs_f64();
    let start = Instant::now();
    for _ in 0..iters {
        db.engine().flush_plan_cache();
        db.query(q).unwrap();
    }
    let cold = iters as f64 / start.elapsed().as_secs_f64();
    (cold, hot)
}

fn main() {
    let n = 4_000 * scale();
    let measure_secs = 1.2;
    let cpus = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);
    let (mut db, mural) = mural_db();
    load_names_table(&mut db, &mural, "names", n, 1).unwrap();
    // ψ point lookups go through the M-tree access method, so each query
    // is index-bound, not scan-bound — the OPAC lookup shape.
    db.execute("CREATE INDEX names_mt ON names (name) USING mtree")
        .unwrap();
    db.execute("ANALYZE names").unwrap();
    // A small concept table for the Ω lookups.
    db.execute("CREATE TABLE concepts (c UNITEXT)").unwrap();
    for i in 0..256 {
        let cat = ["History", "Autobiography", "Novel"][i % 3];
        db.execute(&format!(
            "INSERT INTO concepts VALUES (unitext('{cat}','English'))"
        ))
        .unwrap();
    }
    db.execute("ANALYZE concepts").unwrap();
    db.execute("SET lexequal.threshold = 2").unwrap();

    println!("# concurrent sessions: {n} rows, {measure_secs}s per config, {cpus} cpu(s)");
    // Warm the plan cache and the buffer pool once.
    for q in QUERIES {
        db.query(q).unwrap();
    }
    let hits_before = obs::metrics().plan_cache_hits_total.get();

    let mut rows = Vec::new();
    let mut qps_at = std::collections::HashMap::new();
    for sessions in [1usize, 2, 4] {
        let (total, qps) = run_config(&db, sessions, measure_secs);
        println!("sessions={sessions}: {total} queries, {qps:.0} q/s");
        qps_at.insert(sessions, qps);
        rows.push(obj(vec![
            ("sessions", Value::Int(sessions as i64)),
            ("queries", Value::Int(total as i64)),
            ("qps", Value::Num(qps)),
        ]));
    }
    let scaling = qps_at[&4] / qps_at[&1];
    // Thread scaling is bounded by the host's CPUs; efficiency normalizes
    // the observed scaling against that bound so a 1-CPU CI box reporting
    // 1.0x reads as "no lock serialization", not "no concurrency".
    let bound = 4.0f64.min(cpus as f64);
    let efficiency = scaling / bound;
    let cache_hits = obs::metrics().plan_cache_hits_total.get() - hits_before;
    let (cold_qps, hot_qps) = plan_cache_speedup(&mut db, 300);
    println!("4-session scaling: {scaling:.2}x over 1 session (bound {bound:.0}x, efficiency {efficiency:.2})");
    println!(
        "plan cache: cold {cold_qps:.0} q/s, hot {hot_qps:.0} q/s ({:.2}x)",
        hot_qps / cold_qps
    );
    println!("plan cache hits during run: {cache_hits}");

    let mut rep = Report::new("concurrent_sessions");
    rep.int("rows", n as i64)
        .num("measure_secs", measure_secs)
        .int("cpu_parallelism", cpus as i64)
        .set("configs", Value::Arr(rows))
        .num("qps_1_session", qps_at[&1])
        .num("qps_2_sessions", qps_at[&2])
        .num("qps_4_sessions", qps_at[&4])
        .num("scaling_4x", scaling)
        .num("scaling_bound", bound)
        .num("scaling_efficiency", efficiency)
        .num("plan_cache_cold_qps", cold_qps)
        .num("plan_cache_hot_qps", hot_qps)
        .num("plan_cache_speedup", hot_qps / cold_qps)
        .int("plan_cache_hits", cache_hits as i64)
        .flag(
            "scaling_target_met",
            scaling >= 2.0 || (cpus < 4 && efficiency >= 0.5),
        );
    rep.write_and_note();
}
