//! Figure 6 — optimizer predicted cost vs. actual runtime.
//!
//! Reproduces §5.2: multilingual ψ-join queries under `count(*)`, over
//! tables of varying record counts, attribute counts/sizes and duplication
//! factors, at several thresholds; for each run we record the optimizer's
//! predicted cost and the measured runtime, then report the log-log
//! Pearson correlation (the paper reports "well over 0.9").
//!
//! Run: `cargo run --release -p mlql-bench --bin fig6_cost_prediction`
//! (set `MLQL_SCALE` to enlarge the grid's tables).

use mlql_bench::report::{obj, Report, Value};
use mlql_bench::{mural_db, pearson, scale, timed};
use mlql_datagen::{fig6_workload, names_dataset, NamesConfig};
use mlql_kernel::Datum;
use mlql_mural::types::unitext_datum;
use mlql_unitext::UniText;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    let grid = fig6_workload(scale());
    println!("# Figure 6: optimizer predicted cost vs actual runtime");
    println!("# {} configurations, scale {}", grid.len(), scale());
    println!(
        "{:>10} {:>12} {:>12} {:>6} {:>14} {:>12}",
        "left_rows", "right_rows", "filler", "k", "pred_cost", "runtime_ms"
    );

    let mut costs = Vec::new();
    let mut times = Vec::new();
    let mut points = Vec::new();

    for (qi, q) in grid.iter().enumerate() {
        let (mut db, mural) = mural_db();
        // Tables with filler columns (attribute count/size variation).
        let filler_ddl: String = (0..q.filler_cols)
            .map(|i| format!(", pad{i} TEXT"))
            .collect();
        db.execute(&format!("CREATE TABLE l (name UNITEXT{filler_ddl})"))
            .unwrap();
        db.execute(&format!("CREATE TABLE r (name UNITEXT{filler_ddl})"))
            .unwrap();
        let pad = "x".repeat(q.filler_width);
        let load = |db: &mut mlql_kernel::Database, table: &str, rows: usize, seed: u64| {
            let data = names_dataset(
                &mural.langs,
                &NamesConfig {
                    records: rows,
                    noise: 0.25,
                    seed,
                    ..NamesConfig::default()
                },
            );
            for rec in data {
                let mut row = vec![unitext_datum(mural.unitext_type, &rec.name)];
                for _ in 0..q.filler_cols {
                    row.push(Datum::text(&pad));
                }
                db.insert_row(table, row).unwrap();
            }
        };
        load(&mut db, "l", q.left_rows, 100 + qi as u64);
        load(&mut db, "r", q.right_rows, 200 + qi as u64);
        // Duplication factor: re-insert the same data, then rebuild the
        // histograms (the paper's "duplicate records were introduced ...
        // and the histograms rebuilt").
        for d in 1..q.duplication {
            load(
                &mut db,
                "r",
                q.right_rows,
                200 + qi as u64 + d as u64 * 1000,
            );
        }
        db.execute("ANALYZE l").unwrap();
        db.execute("ANALYZE r").unwrap();
        db.execute(&format!("SET lexequal.threshold = {}", q.threshold))
            .unwrap();

        let sql = "SELECT count(*) FROM l, r WHERE l.name LEXEQUAL r.name";
        let plan = db.plan_select(sql).unwrap();
        let (result, secs) = timed(|| db.execute(sql).unwrap());
        let _ = result;
        let ms = secs * 1000.0;
        println!(
            "{:>10} {:>12} {:>12} {:>6} {:>14.0} {:>12.2}",
            q.left_rows,
            q.right_rows,
            format!("{}x{}", q.filler_cols, q.filler_width),
            q.threshold,
            plan.est_cost,
            ms
        );
        costs.push(plan.est_cost.max(1.0).log10());
        times.push(ms.max(0.001).log10());
        points.push(obj(vec![
            ("op", Value::Str("psi".into())),
            ("left_rows", Value::Int(q.left_rows as i64)),
            ("right_rows", Value::Int(q.right_rows as i64)),
            ("filler_cols", Value::Int(q.filler_cols as i64)),
            ("filler_width", Value::Int(q.filler_width as i64)),
            ("threshold", Value::Int(q.threshold)),
            ("pred_cost", Value::Num(plan.est_cost)),
            ("runtime_ms", Value::Num(ms)),
        ]));
    }

    // ---- Ω-join configurations (the paper's grid used "a multilingual
    // operator"; cover both ψ and Ω). ----
    for (di, &(n_docs, n_concepts)) in [(2000usize, 20usize), (6000, 40), (12000, 80)]
        .iter()
        .enumerate()
    {
        let mut db = mlql_kernel::Database::new_in_memory();
        let synsets = 5000 * scale();
        let langs = mlql_unitext::LanguageRegistry::new();
        let taxonomy = mlql_taxonomy::generate(
            langs.id_of("English"),
            &mlql_taxonomy::GeneratorConfig {
                synsets,
                ..Default::default()
            },
        );
        let mural = mlql_mural::install_with_taxonomy(&mut db, taxonomy).unwrap();
        db.execute("CREATE TABLE docs (category UNITEXT)").unwrap();
        db.execute("CREATE TABLE concepts (name UNITEXT)").unwrap();
        let taxonomy = mural.sem.taxonomy();
        let en = mural.langs.id_of("English");
        let mut rng = StdRng::seed_from_u64(900 + di as u64);
        for _ in 0..(n_docs * scale()) {
            let sid = mlql_taxonomy::SynsetId(rng.gen_range(0..synsets as u32));
            let word = taxonomy.words(sid)[0].clone();
            db.insert_row(
                "docs",
                vec![unitext_datum(
                    mural.unitext_type,
                    &UniText::compose(word, en),
                )],
            )
            .unwrap();
        }
        for _ in 0..(n_concepts * scale()) {
            let sid = mlql_taxonomy::SynsetId(rng.gen_range(0..synsets as u32));
            let word = taxonomy.words(sid)[0].clone();
            db.insert_row(
                "concepts",
                vec![unitext_datum(
                    mural.unitext_type,
                    &UniText::compose(word, en),
                )],
            )
            .unwrap();
        }
        db.execute("ANALYZE docs").unwrap();
        db.execute("ANALYZE concepts").unwrap();
        let sql = "SELECT count(*) FROM concepts c, docs d WHERE d.category SEMEQUAL c.name";
        let plan = db.plan_select(sql).unwrap();
        let (_, secs) = timed(|| db.execute(sql).unwrap());
        let ms = secs * 1000.0;
        println!(
            "{:>10} {:>12} {:>12} {:>6} {:>14.0} {:>12.2}",
            n_docs * scale(),
            n_concepts * scale(),
            "omega",
            "-",
            plan.est_cost,
            ms
        );
        costs.push(plan.est_cost.max(1.0).log10());
        times.push(ms.max(0.001).log10());
        points.push(obj(vec![
            ("op", Value::Str("omega".into())),
            ("left_rows", Value::Int((n_concepts * scale()) as i64)),
            ("right_rows", Value::Int((n_docs * scale()) as i64)),
            ("pred_cost", Value::Num(plan.est_cost)),
            ("runtime_ms", Value::Num(ms)),
        ]));
    }

    let r = pearson(&costs, &times);
    println!("\nlog-log Pearson correlation (predicted cost vs runtime): {r:.3}");
    println!("paper: \"computed correlation coefficient on the plot is well over 0.9\"");

    let mut rep = Report::new("fig6_cost_prediction");
    rep.set("points", Value::Arr(points))
        .num("loglog_pearson", r);
    rep.write_and_note();
}
