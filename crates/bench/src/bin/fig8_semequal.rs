//! Figure 8 — Ω closure-computation performance vs. closure size (§5.4).
//!
//! Four curves on a log-log plot in the paper:
//!
//! * outside-the-server, no index        (slowest)
//! * outside-the-server, B+Tree on parent
//! * core, no index                      (≈1 order faster than outside)
//! * core, B+Tree on parent              (≳2 orders faster; tens of ms at
//!   the typical closure size)
//!
//! Plus, as a footnote, the §4.3 pinned-and-memoized implementation the Ω
//! operator actually uses at query time — faster still, since the
//! hierarchy lives in main memory.
//!
//! Run: `cargo run --release -p mlql-bench --bin fig8_semequal`
//! (`MLQL_SCALE` grows the taxonomy; `MLQL_FIG8_MAX` raises the largest
//! closure target, default 1000 — the paper's 10⁴ point takes the outside
//! no-index curve into paper-like thousands of seconds.)

use mlql_bench::report::{obj, Report, Value};
use mlql_bench::{core_closure_via_tables, mural_db, scale, timed};
use mlql_kernel::pl::PlRuntime;
use mlql_kernel::Datum;
use mlql_mural::outside::{semequal_closure_fn, semequal_closure_setsql_fn};
use mlql_taxonomy::{generate, synsets_near_closure_sizes, GeneratorConfig};

fn main() {
    let synsets = 8000 * scale();
    let max_target: usize = std::env::var("MLQL_FIG8_MAX")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1000);
    let targets: Vec<usize> = [50usize, 100, 300, 1000, 3000, 10_000]
        .into_iter()
        .filter(|&t| t <= max_target && t <= synsets / 2)
        .collect();
    println!("# Figure 8: SemEQUAL closure computation (log-log in the paper)");
    println!("# taxonomy: {synsets} synsets; targets {targets:?}");
    if max_target < 10_000 {
        println!("# NOTE: closure sizes above {max_target} skipped (set MLQL_FIG8_MAX=10000 for the paper's full x-range)");
    }

    let (mut db, mural) = mural_db();
    let lang = mural.langs.id_of("English");
    let taxonomy = generate(
        lang,
        &GeneratorConfig {
            synsets,
            ..GeneratorConfig::default()
        },
    );
    let picks = synsets_near_closure_sizes(&taxonomy, &targets);

    // Store the hierarchy relationally: edges(child, parent).
    db.execute("CREATE TABLE edges (child INT, parent INT)")
        .unwrap();
    for id in taxonomy.ids() {
        for &c in taxonomy.children(id) {
            db.insert_row(
                "edges",
                vec![Datum::Int(c.raw() as i64), Datum::Int(id.raw() as i64)],
            )
            .unwrap();
        }
    }
    db.execute("ANALYZE edges").unwrap();
    db.execute("CREATE TABLE scratch (id INT, done INT)")
        .unwrap();
    db.execute("CREATE TABLE cl (id INT)").unwrap();
    db.execute("CREATE TABLE fr (id INT)").unwrap();
    db.execute("CREATE TABLE fr2 (id INT)").unwrap();
    let closure_fn = semequal_closure_fn("edges", "scratch");
    let setsql_fn = semequal_closure_setsql_fn("edges", "cl", "fr", "fr2");

    // ---- Phase 1: no-index measurements for every target. ----
    // target, actual, out_noidx, out_setsql, core_noidx
    let mut rows: Vec<(usize, usize, f64, f64, f64)> = Vec::new();
    for &(target, synset, actual) in &picks {
        let root = synset.raw() as i64;
        db.execute("DELETE FROM scratch").unwrap();
        let (n1, t_out_noidx) = timed(|| {
            let mut rt = PlRuntime::new(&mut db);
            rt.call(&closure_fn, &[Datum::Int(root)]).unwrap().len()
        });
        assert_eq!(n1, actual, "outside closure size");
        // Set-based SQL-scripts variant (one INSERT..SELECT per level).
        db.execute("DELETE FROM cl").unwrap();
        db.execute("DELETE FROM fr").unwrap();
        db.execute("DELETE FROM fr2").unwrap();
        let (n_set, t_out_setsql) = timed(|| {
            let mut rt = PlRuntime::new(&mut db);
            rt.call(&setsql_fn, &[Datum::Int(root)]).unwrap().len()
        });
        assert_eq!(n_set, actual, "set-based closure size");
        let (n2, t_core_noidx) =
            timed(|| core_closure_via_tables(&db, "edges", None, root).unwrap());
        assert_eq!(n2, actual);
        rows.push((target, actual, t_out_noidx, t_out_setsql, t_core_noidx));
    }

    // ---- Phase 2: build the B+Tree on parent, re-measure. ----
    db.execute("CREATE INDEX edges_parent ON edges (parent) USING btree")
        .unwrap();
    db.execute("ANALYZE edges").unwrap();

    println!();
    println!(
        "{:>8} {:>8} | {:>15} {:>15} {:>15} {:>13} {:>13} {:>13}",
        "target",
        "actual",
        "outside_noidx",
        "outside_setsql",
        "outside_btree",
        "core_noidx",
        "core_btree",
        "pinned_memo"
    );
    let mut curves = Vec::new();
    for (i, &(target, synset, actual)) in picks.iter().enumerate() {
        let root = synset.raw() as i64;
        db.execute("DELETE FROM scratch").unwrap();
        let (n3, t_out_btree) = timed(|| {
            let mut rt = PlRuntime::new(&mut db);
            rt.call(&closure_fn, &[Datum::Int(root)]).unwrap().len()
        });
        assert_eq!(n3, actual);
        let (n4, t_core_btree) =
            timed(|| core_closure_via_tables(&db, "edges", Some("edges_parent"), root).unwrap());
        assert_eq!(n4, actual);
        // Pinned, un-memoized computation (the operator's §4.3 path with a
        // cold cache; warm-cache probes are O(1)).
        let (n5, t_pinned) =
            timed(|| mlql_taxonomy::closure::compute_closure(&taxonomy, synset).len());
        assert_eq!(n5, actual);
        let (_, _, t_out_noidx, t_out_setsql, t_core_noidx) = rows[i];
        println!(
            "{:>8} {:>8} | {:>13.4} s {:>13.4} s {:>13.4} s {:>11.4} s {:>11.4} s {:>11.5} s",
            target,
            actual,
            t_out_noidx,
            t_out_setsql,
            t_out_btree,
            t_core_noidx,
            t_core_btree,
            t_pinned
        );
        curves.push(obj(vec![
            ("target", Value::Int(target as i64)),
            ("closure_size", Value::Int(actual as i64)),
            ("outside_noidx_secs", Value::Num(t_out_noidx)),
            ("outside_setsql_secs", Value::Num(t_out_setsql)),
            ("outside_btree_secs", Value::Num(t_out_btree)),
            ("core_noidx_secs", Value::Num(t_core_noidx)),
            ("core_btree_secs", Value::Num(t_core_btree)),
            ("pinned_memo_secs", Value::Num(t_pinned)),
        ]));
    }

    println!();
    println!("# paper shape: core no-index ≈ 1 order faster than outside no-index;");
    println!("# core + B+Tree ≳ 2 orders faster than outside; tens of ms at typical sizes.");

    let mut rep = Report::new("fig8_semequal");
    rep.int("synsets", synsets as i64)
        .set("points", Value::Arr(curves));
    rep.write_and_note();
}
