//! Durability-path benchmarks: WAL replay time as a function of log size,
//! reopen cost after a checkpoint (bounded by the tail, not history), and
//! insert throughput under the four `wal_sync_mode` policies — including
//! group commit at 1/2/4 concurrent sessions against the per-record-fsync
//! baseline it exists to beat.
//!
//! Emits `BENCH_recovery.json`; the acceptance gate is
//! `group_commit_speedup_4_sessions >= 2`.

use mlql_bench::report::{obj, Report, Value};
use mlql_bench::{scale, timed};
use mlql_kernel::{obs, snapshot, Database};
use std::path::{Path, PathBuf};
use std::time::Instant;

fn tmpdir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("mlql-recbench-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

fn wal_bytes(dir: &Path) -> u64 {
    std::fs::metadata(snapshot::wal_path(dir))
        .map(|m| m.len())
        .unwrap_or(0)
}

/// Build a durable database with `records` logged inserts (sync off: we
/// are measuring *replay*, not append), then time a cold reopen.
fn replay_cost(records: usize) -> (u64, f64) {
    let dir = tmpdir(&format!("replay-{records}"));
    {
        let mut db = Database::open(&dir).unwrap();
        db.execute("SET wal_sync_mode = 'off'").unwrap();
        db.execute("CREATE TABLE t (id INT, v TEXT)").unwrap();
        for i in 0..records {
            db.execute(&format!("INSERT INTO t VALUES ({i}, 'value-{i}')"))
                .unwrap();
        }
    }
    let bytes = wal_bytes(&dir);
    let (db, secs) = timed(|| Database::open(&dir).unwrap());
    drop(db);
    std::fs::remove_dir_all(&dir).unwrap();
    (bytes, secs)
}

/// Reopen cost after a checkpoint with a fixed-size tail, for growing
/// pre-checkpoint histories: the times must stay flat.
fn checkpointed_reopen(history: usize, tail: usize) -> f64 {
    let dir = tmpdir(&format!("ckpt-{history}"));
    {
        let mut db = Database::open(&dir).unwrap();
        db.execute("SET wal_sync_mode = 'off'").unwrap();
        db.execute("CREATE TABLE t (id INT, v TEXT)").unwrap();
        for i in 0..history {
            db.execute(&format!("INSERT INTO t VALUES ({i}, 'value-{i}')"))
                .unwrap();
        }
        db.checkpoint().unwrap();
        for i in 0..tail {
            db.execute(&format!("INSERT INTO t VALUES ({i}, 'tail')"))
                .unwrap();
        }
    }
    let (db, secs) = timed(|| Database::open(&dir).unwrap());
    drop(db);
    std::fs::remove_dir_all(&dir).unwrap();
    secs
}

/// Insert throughput (rows/s) with `sessions` concurrent writers under the
/// given `wal_sync_mode`.  Every session inserts `per_session` single-row
/// statements; group commit shows up as fewer fsyncs than rows.
fn insert_throughput(mode: &str, sessions: usize, per_session: usize) -> (f64, u64) {
    let dir = tmpdir(&format!("ins-{mode}-{sessions}"));
    let mut db = Database::open(&dir).unwrap();
    db.execute("CREATE TABLE t (id INT)").unwrap();
    db.execute(&format!("SET wal_sync_mode = '{mode}'"))
        .unwrap();
    let fsyncs_before = obs::metrics().wal_fsyncs_total.get();
    let start = Instant::now();
    std::thread::scope(|scope| {
        for s in 0..sessions {
            let mut session = db.connect();
            scope.spawn(move || {
                for i in 0..per_session {
                    session
                        .execute(&format!("INSERT INTO t VALUES ({})", s * per_session + i))
                        .unwrap();
                }
            });
        }
    });
    let elapsed = start.elapsed().as_secs_f64();
    let fsyncs = obs::metrics().wal_fsyncs_total.get() - fsyncs_before;
    drop(db);
    std::fs::remove_dir_all(&dir).unwrap();
    ((sessions * per_session) as f64 / elapsed, fsyncs)
}

fn main() {
    let sc = scale();
    println!("# recovery bench (scale {sc})");

    // --- replay time vs log size -------------------------------------
    let mut replay_rows = Vec::new();
    for &records in &[500 * sc, 2_000 * sc, 8_000 * sc] {
        let (bytes, secs) = replay_cost(records);
        println!("replay {records} records ({bytes} WAL bytes): {secs:.3}s");
        replay_rows.push(obj(vec![
            ("records", Value::Int(records as i64)),
            ("wal_bytes", Value::Int(bytes as i64)),
            ("reopen_secs", Value::Num(secs)),
        ]));
    }

    // --- checkpointed reopen: flat in history size --------------------
    let tail = 50;
    let mut ckpt_rows = Vec::new();
    let mut ckpt_times = Vec::new();
    for &history in &[500 * sc, 8_000 * sc] {
        let secs = checkpointed_reopen(history, tail);
        println!("checkpointed reopen (history {history}, tail {tail}): {secs:.3}s");
        ckpt_times.push(secs);
        ckpt_rows.push(obj(vec![
            ("history", Value::Int(history as i64)),
            ("tail", Value::Int(tail as i64)),
            ("reopen_secs", Value::Num(secs)),
        ]));
    }
    // 16x more history must not cost anywhere near 16x the reopen; allow
    // generous noise on shared CI boxes.
    let ckpt_flat = ckpt_times[1] <= ckpt_times[0] * 4.0 + 0.05;

    // --- group commit vs per-record fsync -----------------------------
    let per_session = 150 * sc;
    let (base_rps, base_fsyncs) = insert_throughput("fsync_per_record", 1, per_session);
    println!("fsync_per_record @1: {base_rps:.0} rows/s ({base_fsyncs} fsyncs)");
    let mut commit_rows = vec![obj(vec![
        ("mode", Value::Str("fsync_per_record".into())),
        ("sessions", Value::Int(1)),
        ("rows_per_sec", Value::Num(base_rps)),
        ("fsyncs", Value::Int(base_fsyncs as i64)),
    ])];
    let mut group_rps = std::collections::HashMap::new();
    for sessions in [1usize, 2, 4] {
        let (rps, fsyncs) = insert_throughput("fsync", sessions, per_session / sessions.max(1));
        println!("fsync (group commit) @{sessions}: {rps:.0} rows/s ({fsyncs} fsyncs)");
        group_rps.insert(sessions, rps);
        commit_rows.push(obj(vec![
            ("mode", Value::Str("fsync".into())),
            ("sessions", Value::Int(sessions as i64)),
            ("rows_per_sec", Value::Num(rps)),
            ("fsyncs", Value::Int(fsyncs as i64)),
        ]));
    }
    let speedup = group_rps[&4] / base_rps;
    println!("group-commit speedup @4 sessions vs per-record fsync: {speedup:.2}x");

    let mut rep = Report::new("recovery");
    rep.int("scale", sc as i64)
        .set("replay", Value::Arr(replay_rows))
        .set("checkpointed_reopen", Value::Arr(ckpt_rows))
        .flag("checkpoint_bounds_reopen_cost", ckpt_flat)
        .set("insert_throughput", Value::Arr(commit_rows))
        .num("fsync_per_record_rows_per_sec", base_rps)
        .num("group_commit_rows_per_sec_1_session", group_rps[&1])
        .num("group_commit_rows_per_sec_2_sessions", group_rps[&2])
        .num("group_commit_rows_per_sec_4_sessions", group_rps[&4])
        .num("group_commit_speedup_4_sessions", speedup)
        .flag("group_commit_target_met", speedup >= 2.0);
    rep.write_and_note();
}
