//! Matching quality: LexEQUAL vs. the Soundex baseline.
//!
//! The performance paper takes ψ's matching quality from its companion
//! study (LexEQUAL, EDBT 2004), which reported that threshold-tuned
//! phonemic edit distance beats classic phonetic codes on multilingual
//! names.  This harness reproduces that *shape* on the generated corpus,
//! where ground truth is known (records generated from the same seed stem
//! are true homophones):
//!
//! * **recall** — fraction of true same-stem pairs a matcher accepts;
//! * **precision** — fraction of accepted pairs that are true pairs.
//!
//! Soundex only sees Latin script, so its multilingual recall collapses —
//! the core motivation for the phoneme-based design.
//!
//! Run: `cargo run --release -p mlql-bench --bin quality_lexequal`

use mlql_bench::report::{obj, Report, Value};
use mlql_bench::scale;
use mlql_datagen::{names_dataset, NamesConfig};
use mlql_phonetics::distance::within_distance;
use mlql_phonetics::soundex::soundex_matches;
use mlql_phonetics::ConverterRegistry;
use mlql_unitext::LanguageRegistry;

fn main() {
    let records = 1200 * scale();
    let langs = LanguageRegistry::new();
    let convs = ConverterRegistry::with_builtins(&langs);
    // Few stems → plenty of true pairs per stem.
    let data = names_dataset(
        &langs,
        &NamesConfig {
            records,
            noise: 0.3,
            seed: 31,
            distinct: 60,
        },
    );
    let phonemes: Vec<Vec<u8>> = data
        .iter()
        .map(|r| convs.phonemes_of(&r.name).as_bytes().to_vec())
        .collect();

    println!("# Matching quality on {records} multilingual names (60 stems, 4 scripts)");
    println!(
        "{:<22} {:>10} {:>10} {:>8}",
        "matcher", "recall", "precision", "F1"
    );

    let eval = |label: &str, accept: &mut dyn FnMut(usize, usize) -> bool| -> (f64, f64, f64) {
        let mut tp = 0u64;
        let mut fp = 0u64;
        let mut fn_ = 0u64;
        for i in 0..data.len() {
            for j in (i + 1)..data.len() {
                let truth = data[i].seed == data[j].seed;
                let matched = accept(i, j);
                match (truth, matched) {
                    (true, true) => tp += 1,
                    (false, true) => fp += 1,
                    (true, false) => fn_ += 1,
                    (false, false) => {}
                }
            }
        }
        let recall = tp as f64 / (tp + fn_).max(1) as f64;
        let precision = tp as f64 / (tp + fp).max(1) as f64;
        let f1 = if recall + precision > 0.0 {
            2.0 * recall * precision / (recall + precision)
        } else {
            0.0
        };
        println!("{label:<22} {recall:>10.3} {precision:>10.3} {f1:>8.3}");
        (recall, precision, f1)
    };

    let mut matchers = Vec::new();
    let mut record = |label: &str, (recall, precision, f1): (f64, f64, f64)| {
        matchers.push(obj(vec![
            ("matcher", Value::Str(label.into())),
            ("recall", Value::Num(recall)),
            ("precision", Value::Num(precision)),
            ("f1", Value::Num(f1)),
        ]));
    };
    for k in [0usize, 1, 2, 3, 4] {
        let label = format!("lexequal k={k}");
        let r = eval(&label, &mut |i, j| {
            within_distance(&phonemes[i], &phonemes[j], k)
        });
        record(&label, r);
    }
    let r = eval("soundex", &mut |i, j| {
        soundex_matches(data[i].name.text(), data[j].name.text())
    });
    record("soundex", r);
    // Soundex restricted to Latin-script pairs only (its best case).
    let en = langs.id_of("English");
    let r = eval("soundex (latin-only)", &mut |i, j| {
        data[i].name.lang() == en
            && data[j].name.lang() == en
            && soundex_matches(data[i].name.text(), data[j].name.text())
    });
    record("soundex (latin-only)", r);

    println!();
    println!("# expected shape: lexequal recall rises with k (precision falls);");
    println!("# soundex recall collapses on cross-script pairs (it reads only Latin).");

    let mut rep = Report::new("quality_lexequal");
    rep.int("records", records as i64)
        .set("matchers", Value::Arr(matchers));
    rep.write_and_note();
}
