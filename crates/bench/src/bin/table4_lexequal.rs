//! Table 4 — ψ performance: core vs. outside-the-server, scan & join,
//! with and without indexes (threshold 3, phonemes materialized).
//!
//! Paper's numbers (50 K names, Pentium-IV):
//!
//! | implementation        | scan (s) | join (s) |
//! |-----------------------|---------:|---------:|
//! | core, no index        |     5.20 |     1.97 |
//! | core, M-Tree          |     4.24 |     1.92 |
//! | outside, no index     |  3618    |   453    |
//! | outside, MDI (B-Tree) |   498    |   169    |
//!
//! We do not chase the absolute numbers (different machine, different
//! engine); the *shape* must hold: core ≫ outside by orders of magnitude,
//! and the M-Tree only marginally better than the core scan ("poor pruning
//! efficiency", §5.3).
//!
//! Run: `cargo run --release -p mlql-bench --bin table4_lexequal`
//! Scale with `MLQL_SCALE` (default keeps the outside-the-server runs in
//! seconds; the paper's 50 K rows correspond to roughly MLQL_SCALE=12).

use mlql_bench::report::Report;
use mlql_bench::{load_names_outside, load_names_table, mural_db, scale, timed};
use mlql_kernel::pl::PlRuntime;
use mlql_kernel::{Database, Datum};
use mlql_mural::{mdi, outside};

/// Probe names used for the scan measurements (averaged).
const PROBES: &[(&str, &str)] = &[
    ("Nehru", "English"),
    ("Gandhi", "English"),
    ("Miller", "English"),
    ("Krishnan", "English"),
];

fn core_scan(db: &mut Database, use_index: bool) -> f64 {
    db.execute(&format!(
        "SET enable_seqscan = {}",
        if use_index { 0 } else { 1 }
    ))
    .unwrap();
    db.execute(&format!(
        "SET enable_indexscan = {}",
        if use_index { 1 } else { 0 }
    ))
    .unwrap();
    let (_, secs) = timed(|| {
        for (name, lang) in PROBES {
            let sql = format!(
                "SELECT count(*) FROM names WHERE name LEXEQUAL unitext('{name}','{lang}')"
            );
            db.execute(&sql).unwrap();
        }
    });
    db.execute("SET enable_seqscan = 1").unwrap();
    db.execute("SET enable_indexscan = 1").unwrap();
    secs / PROBES.len() as f64
}

fn core_join(db: &mut Database, use_index: bool) -> f64 {
    // Index-assisted join: probe the M-Tree per outer row is not a plan our
    // executor builds (index nested-loops over ext-ops); like the paper we
    // report the best core join the engine runs, with the index available
    // or not.
    db.execute(&format!(
        "SET enable_indexscan = {}",
        if use_index { 1 } else { 0 }
    ))
    .unwrap();
    let sql = "SELECT count(*) FROM probes p, names n WHERE p.name LEXEQUAL n.name";
    let (_, secs) = timed(|| {
        db.execute(sql).unwrap();
    });
    db.execute("SET enable_indexscan = 1").unwrap();
    secs
}

fn outside_scan(db: &mut Database, with_mdi: bool, mural: &mlql_mural::Mural) -> f64 {
    let full = outside::lexequal_scan_fn("names_out", "name", "ph");
    let mdi_fn = outside::lexequal_scan_mdi_fn("names_out", "name", "ph", "mdi");
    let (_, secs) = timed(|| {
        for (name, lang) in PROBES {
            let v = mlql_unitext::UniText::compose(*name, mural.langs.id_of(lang));
            let ph = mural.converters.phonemes_of(&v);
            let ph_text = String::from_utf8_lossy(ph.as_bytes()).into_owned();
            let mut rt = PlRuntime::new(db);
            rt.register_function(outside::editdistance_pl_fn());
            if with_mdi {
                let key = mdi::mdi_key(ph.as_bytes(), mdi::DEFAULT_ANCHOR);
                rt.call(
                    &mdi_fn,
                    &[Datum::text(&ph_text), Datum::Int(3), Datum::Int(key)],
                )
                .unwrap();
            } else {
                rt.call(&full, &[Datum::text(&ph_text), Datum::Int(3)])
                    .unwrap();
            }
        }
    });
    secs / PROBES.len() as f64
}

fn outside_join(db: &mut Database, with_mdi: bool) -> f64 {
    let plain = outside::lexequal_join_fn("probes_out", "name", "ph", "names_out", "name", "ph");
    let with_idx = outside::lexequal_join_mdi_fn(
        "probes_out",
        "name",
        "ph",
        "mdi",
        "names_out",
        "name",
        "ph",
        "mdi",
    );
    let (_, secs) = timed(|| {
        let mut rt = PlRuntime::new(db);
        rt.register_function(outside::editdistance_pl_fn());
        let f = if with_mdi { &with_idx } else { &plain };
        rt.call(f, &[Datum::Int(3)]).unwrap();
    });
    secs
}

fn main() {
    let n_names = 2000 * scale();
    let n_probes = 40 * scale();
    println!("# Table 4: LexEQUAL performance (threshold 3)");
    println!(
        "# names table: {n_names} rows; join probes: {n_probes} rows; scale {}",
        scale()
    );

    let (mut db, mural) = mural_db();
    db.execute("SET lexequal.threshold = 3").unwrap();
    load_names_table(&mut db, &mural, "names", n_names, 1).unwrap();
    load_names_table(&mut db, &mural, "probes", n_probes, 2).unwrap();
    db.execute("CREATE INDEX names_mt ON names (name) USING mtree")
        .unwrap();
    load_names_outside(&mut db, &mural, "names_out", n_names, 1).unwrap();
    load_names_outside(&mut db, &mural, "probes_out", n_probes, 2).unwrap();
    db.execute("CREATE INDEX names_out_mdi ON names_out (mdi) USING btree")
        .unwrap();

    let core_scan_noidx = core_scan(&mut db, false);
    let core_scan_mtree = core_scan(&mut db, true);
    let core_join_noidx = core_join(&mut db, false);
    let core_join_mtree = core_join(&mut db, true);
    let out_scan_noidx = outside_scan(&mut db, false, &mural);
    let out_scan_mdi = outside_scan(&mut db, true, &mural);
    let out_join_noidx = outside_join(&mut db, false);
    let out_join_mdi = outside_join(&mut db, true);

    println!();
    println!("| implementation            | scan (s) | join (s) | paper scan | paper join |");
    println!("|---------------------------|----------|----------|------------|------------|");
    println!("| core, no index            | {core_scan_noidx:>8.4} | {core_join_noidx:>8.4} |       5.20 |       1.97 |");
    println!("| core, M-Tree index        | {core_scan_mtree:>8.4} | {core_join_mtree:>8.4} |       4.24 |       1.92 |");
    println!("| outside-server, no index  | {out_scan_noidx:>8.4} | {out_join_noidx:>8.4} |       3618 |        453 |");
    println!("| outside-server, MDI index | {out_scan_mdi:>8.4} | {out_join_mdi:>8.4} |        498 |        169 |");
    println!();
    let scan_speedup = out_scan_mdi / core_scan_noidx.max(1e-9);
    let join_speedup = out_join_mdi / core_join_noidx.max(1e-9);
    println!("core vs outside+index speedup: scan {scan_speedup:.0}x, join {join_speedup:.0}x");
    println!("(paper: ~2 orders of magnitude: scan 96x, join 86x)");
    let mtree_gain = core_scan_noidx / core_scan_mtree.max(1e-9);
    println!("M-Tree over core seq scan:     {mtree_gain:.2}x");
    println!("(paper: marginal — 5.20/4.24 = 1.23x, due to poor pruning efficiency)");

    // Pruning efficiency: fraction of stored keys the M-Tree compared per
    // probe (§5.3 attributes the marginal gains to poor pruning).
    let pruning_frac = {
        let meta = db.catalog().table("names").unwrap();
        let idx = db
            .catalog()
            .indexes_of(meta.id)
            .into_iter()
            .find(|i| i.am == "mtree")
            .unwrap();
        let mut total_cmp = 0u64;
        for (name, lang) in PROBES {
            let probe = mural.unitext(name, lang).unwrap();
            let search = idx
                .instance
                .read()
                .search("within", &probe, &Datum::Int(3))
                .unwrap();
            total_cmp += search.comparisons;
        }
        let frac = total_cmp as f64 / (PROBES.len() * n_names) as f64;
        println!(
            "M-Tree pruning: {:.0}% of keys distance-compared per probe at k=3",
            frac * 100.0
        );
        frac
    };

    let mut rep = Report::new("table4_lexequal");
    rep.int("names_rows", n_names as i64)
        .int("probe_rows", n_probes as i64)
        .num("core_scan_noidx_secs", core_scan_noidx)
        .num("core_scan_mtree_secs", core_scan_mtree)
        .num("core_join_noidx_secs", core_join_noidx)
        .num("core_join_mtree_secs", core_join_mtree)
        .num("outside_scan_noidx_secs", out_scan_noidx)
        .num("outside_scan_mdi_secs", out_scan_mdi)
        .num("outside_join_noidx_secs", out_join_noidx)
        .num("outside_join_mdi_secs", out_join_mdi)
        .num("scan_speedup", scan_speedup)
        .num("join_speedup", join_speedup)
        .num("mtree_gain", mtree_gain)
        .num("mtree_pruning_fraction", pruning_frac);
    rep.write_and_note();
}
