//! Criterion micro-benchmarks for the design choices DESIGN.md calls out:
//! edit-distance algorithms, G2P throughput, M-Tree split policies
//! (the §4.2.1 random-split ablation), closure memoization (the §4.3
//! ablation), and histogram-based ψ selectivity estimation.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use mlql_mtree::{MTree, SplitPolicy};
use mlql_phonetics::distance::{edit_distance, edit_distance_banded, DistanceBuffer};
use mlql_phonetics::ConverterRegistry;
use mlql_taxonomy::{generate, ClosureCache, GeneratorConfig};
use mlql_unitext::{LanguageRegistry, UniText};

fn bench_edit_distance(c: &mut Criterion) {
    let a = b"nakarapetilanevaru";
    let b = b"nakaraptilanovarux";
    let mut group = c.benchmark_group("edit_distance");
    group.bench_function("full_dp", |bench| {
        bench.iter(|| edit_distance(black_box(a), black_box(b)))
    });
    group.bench_function("banded_k3", |bench| {
        bench.iter(|| edit_distance_banded(black_box(a), black_box(b), 3))
    });
    group.bench_function("banded_k3_reused_buffer", |bench| {
        let mut buf = DistanceBuffer::new();
        bench.iter(|| buf.distance_within(black_box(a), black_box(b), 3))
    });
    // Early-exit on clearly-far strings: the length pre-filter.
    group.bench_function("banded_k1_far", |bench| {
        bench.iter(|| edit_distance_banded(black_box(b"nehru"), black_box(b"subramanian"), 1))
    });
    group.finish();
}

fn bench_g2p(c: &mut Criterion) {
    let langs = LanguageRegistry::new();
    let convs = ConverterRegistry::with_builtins(&langs);
    let mut group = c.benchmark_group("g2p");
    for (label, text, lang) in [
        ("english", "subramanian", "English"),
        ("french", "bourguignon", "French"),
        ("hindi", "नेहरू", "Hindi"),
        ("tamil", "சுப்பிரமணியம்", "Tamil"),
    ] {
        let v = UniText::compose(text, langs.id_of(lang));
        group.bench_function(label, |bench| {
            bench.iter(|| convs.phonemes_of(black_box(&v)))
        });
    }
    group.finish();
}

fn bench_mtree_split_policies(c: &mut Criterion) {
    let langs = LanguageRegistry::new();
    let convs = ConverterRegistry::with_builtins(&langs);
    let data = mlql_datagen::names_dataset(
        &langs,
        &mlql_datagen::NamesConfig {
            records: 2000,
            noise: 0.25,
            seed: 5,
            ..Default::default()
        },
    );
    let keys: Vec<Vec<u8>> = data
        .iter()
        .map(|r| convs.phonemes_of(&r.name).as_bytes().to_vec())
        .collect();
    type Metric = fn(&Vec<u8>, &Vec<u8>) -> f64;
    let metric: Metric = |a, b| edit_distance(a, b) as f64;

    let mut group = c.benchmark_group("mtree_split");
    group.sample_size(10);
    for (label, policy) in [
        ("build_random", SplitPolicy::Random),
        ("build_minmax", SplitPolicy::MinMaxRadius),
    ] {
        group.bench_function(label, |bench| {
            bench.iter(|| {
                let mut t: MTree<Vec<u8>, usize, Metric> =
                    MTree::with_options(metric, 64, policy, 9);
                for (i, k) in keys.iter().enumerate() {
                    t.insert(k.clone(), i);
                }
                black_box(t.node_count())
            })
        });
    }
    // Query pruning comparison at threshold 3 (the paper's setting).
    for (label, policy) in [
        ("probe_random", SplitPolicy::Random),
        ("probe_minmax", SplitPolicy::MinMaxRadius),
    ] {
        let mut t: MTree<Vec<u8>, usize, Metric> = MTree::with_options(metric, 64, policy, 9);
        for (i, k) in keys.iter().enumerate() {
            t.insert(k.clone(), i);
        }
        let probe = keys[0].clone();
        group.bench_function(label, |bench| {
            bench.iter(|| {
                black_box(t.range(black_box(&probe), 3.0))
                    .1
                    .dist_computations
            })
        });
    }
    group.finish();
}

fn bench_closure_memoization(c: &mut Criterion) {
    let langs = LanguageRegistry::new();
    let taxonomy = generate(
        langs.id_of("English"),
        &GeneratorConfig {
            synsets: 20_000,
            ..GeneratorConfig::default()
        },
    );
    let picks = mlql_taxonomy::generator::synsets_near_closure_sizes(&taxonomy, &[1000]);
    let (_, synset, _) = picks[0];

    let mut group = c.benchmark_group("omega_closure");
    group.bench_function("uncached", |bench| {
        bench.iter(|| black_box(mlql_taxonomy::closure::compute_closure(&taxonomy, synset).len()))
    });
    group.bench_function("memoized", |bench| {
        let mut cache = ClosureCache::new();
        cache.closure(&taxonomy, synset); // warm
        bench.iter(|| black_box(cache.closure(&taxonomy, synset).len()))
    });
    // The interval index answers the membership probe without
    // materializing the closure at all (the engine's Ω fast path).
    let index = mlql_taxonomy::IntervalIndex::build(&taxonomy);
    let candidate = mlql_taxonomy::SynsetId(17);
    group.bench_function("interval_index_probe", |bench| {
        bench.iter(|| black_box(index.contains(synset, candidate)))
    });
    group.finish();
}

fn bench_psi_selectivity(c: &mut Criterion) {
    use mlql_mural::selectivity::psi_scan_selectivity;
    let mcvs: Vec<(Vec<u8>, f64)> = (0..10)
        .map(|i| (format!("phoneme{i}").into_bytes(), 0.02))
        .collect();
    c.bench_with_input(
        BenchmarkId::new("psi_selectivity", "10mcv"),
        &mcvs,
        |bench, mcvs| bench.iter(|| psi_scan_selectivity(black_box(mcvs), b"phoneme4x", 2)),
    );
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(400))
        .measurement_time(std::time::Duration::from_secs(2))
        .sample_size(20);
    targets = bench_edit_distance,
        bench_g2p,
        bench_mtree_split_policies,
        bench_closure_memoization,
        bench_psi_selectivity
}
criterion_main!(benches);
